(* A live rendition of the paper's Figure 1: partition a spanning tree
   into Kutten-Peleg fragments and display the anatomy Section 2 builds
   on -- fragments, fragment roots, the fragment tree T_F, merging
   nodes, and T'_F.

     dune exec examples/fragment_anatomy.exe *)

module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Generators = Mincut_graph.Generators
module Fragments = Mincut_mst.Fragments
module One_respect = Mincut_core.One_respect
module One_respect_seq = Mincut_core.One_respect_seq

let () =
  (* A spider gives the same picture as the paper's Figure 1: long
     branches that split into fragments, with the hub as a merging
     node. *)
  let g = Generators.spider ~legs:3 ~leg_length:10 in
  let tree = Tree.bfs_tree g ~root:(Graph.n g - 1) in
  let fr = Fragments.partition tree ~target:4 in
  Printf.printf "tree on %d nodes, height %d, partitioned with target height 4\n\n"
    (Graph.n g) (Tree.height tree);

  Printf.printf "%d fragments (paper bound: n/target + 1 = %d):\n"
    (Fragments.count fr)
    ((Graph.n g / 4) + 1);
  Array.iteri
    (fun i members ->
      Printf.printf "  F%-2d root=%-3d id=%-3d height=%d  members: %s\n" i
        fr.Fragments.roots.(i) fr.Fragments.ids.(i) fr.Fragments.heights.(i)
        (String.concat "," (List.map string_of_int members)))
    fr.Fragments.members;

  print_endline "\nfragment tree T_F (child fragment -> parent fragment):";
  Array.iteri
    (fun i p -> if p <> -1 then Printf.printf "  F%d -> F%d\n" i p)
    fr.Fragments.frag_parent;

  (* merging nodes and T'F via the One_respect analysis *)
  let per_edge = One_respect.lca_by_fragments g tree in
  let r = One_respect.run ~params:Mincut_core.Params.fast g tree in
  Printf.printf "\nmerging nodes: %d, |T'F| = %d (both O(sqrt n))\n"
    r.One_respect.stats.One_respect.merging_count
    r.One_respect.stats.One_respect.tf_prime_size;

  let c1, c2, c3 =
    Array.fold_left
      (fun (a, b, c) (_, case, _) ->
        match case with 1 -> (a + 1, b, c) | 2 -> (a, b + 1, c) | _ -> (a, b, c + 1))
      (0, 0, 0) per_edge
  in
  Printf.printf
    "\nStep-5 LCA case split over the %d edges: %d same-fragment (case 1), %d \
     above-both (case 2, at merging nodes), %d in-one-fragment (case 3)\n"
    (Graph.m g) c1 c2 c3;

  (* a Graphviz rendering with fragments as labels and the best cut
     painted, for the README-curious *)
  let seq = One_respect_seq.run g tree in
  Printf.printf
    "\nminimum cut 1-respecting this tree: C(%d-subtree) = %d (the spider's legs \
     detach with a single cut edge)\n"
    seq.One_respect_seq.best_node seq.One_respect_seq.best_value;

  let side = One_respect_seq.side_of tree seq.One_respect_seq.best_node in
  let labels v = Printf.sprintf "%d|F%d" v fr.Fragments.frag_of.(v) in
  (* generated output belongs next to the example, not at the repo root;
     under the dune test sandbox (no examples/ dir) fall back to cwd *)
  let out =
    if Sys.file_exists "examples" && Sys.is_directory "examples" then
      Filename.concat "examples" "fragment_anatomy.dot"
    else "fragment_anatomy.dot"
  in
  Mincut_graph.Dot.save out ~side ~labels g;
  Printf.printf "\nwrote %s (render with: dot -Tsvg %s)\n" out out
