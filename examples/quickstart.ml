(* Quickstart: build a network, run the paper's algorithm, inspect the
   answer and the simulated CONGEST round bill.

     dune exec examples/quickstart.exe *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Api = Mincut_core.Api
module Bitset = Mincut_util.Bitset

let () =
  (* A 6x6 torus: every node has 4 neighbors, so the minimum cut is 4
     (isolate any single node). *)
  let g = Generators.torus 6 6 in
  Printf.printf "network: 6x6 torus, n=%d, m=%d\n" (Graph.n g) (Graph.m g);

  (* Default algorithm: the paper's exact min cut via tree packing +
     the 1-respecting-cut routine of Theorem 2.1. *)
  let r = Api.min_cut g in
  Printf.printf "minimum cut: %d\n" r.Api.value;
  Printf.printf "one side of the cut (%d nodes): %s\n"
    (Bitset.cardinal r.Api.side)
    (String.concat ", " (List.map string_of_int (Bitset.to_list r.Api.side)));
  Printf.printf "simulated CONGEST rounds: %d\n\n" r.Api.rounds;

  (* Every answer is a real cut, so it can be certified locally. *)
  assert (Api.verify g r);
  print_endline "verified: the reported value equals C(side) by definition";

  (* Where did the rounds go?  Top five steps of the bill: *)
  print_endline "\nlargest cost centers:";
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) r.Api.breakdown in
  List.iteri
    (fun i (label, rounds) ->
      if i < 5 then Printf.printf "  %6d  %s\n" rounds label)
    sorted;

  (* The (1+eps) variant trades exactness for a lambda-free bound. *)
  let a = Api.min_cut ~algorithm:(Api.Approx 0.5) g in
  Printf.printf "\n(1+0.5)-approx found %d in %d rounds\n" a.Api.value a.Api.rounds;

  (* Long-lived deployments go through Mincut_serve: results are
     memoized by structural graph hash, so the second submission of the
     same network is answered from the cache, bit-identical and without
     re-running the CONGEST simulation. *)
  let module Serve = Mincut_serve.Service in
  let module Request = Mincut_serve.Request in
  let service = Serve.create () in
  let first = Serve.solve service (Request.make g) in
  let again = Serve.solve service (Request.make g) in
  Printf.printf "\nserve: first cached=%b (%.2f ms), repeat cached=%b (%.3f ms), same rounds=%b\n"
    first.Request.cached first.Request.elapsed_ms again.Request.cached
    again.Request.elapsed_ms
    (first.Request.summary.Api.rounds = again.Request.summary.Api.rounds)
