(* Durable bench artifacts.

   Every bench emits a BENCH_*.json, and several also gate — [failwith]
   on a regression.  Before this module, a gate that fired ahead of the
   artifact write (delta's stream-rejection checks, sim's driver and
   pool gates) exited with the JSON never written, so CI kept the
   failure but lost the evidence.  Two invariants, audited here once
   instead of per bench:

   - [write] brackets the output channel ([Fun.protect]), so an
     mid-write exception cannot leak the descriptor — the same rule
     [Resguard] enforces statically on lib/ and bin/;
   - [guard] wraps a bench body and hands it the artifact emitter; if
     the body dies before emitting, a minimal [{ bench; error }] record
     is written to the same path and the exception re-raised, so the
     run still fails loudly but the artifact upload step has a file
     explaining why. *)

module Json = Mincut_util.Json

let write path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

let guard ~path ~bench f =
  let emitted = ref false in
  let emit json =
    write path json;
    emitted := true
  in
  match f emit with
  | v -> v
  | exception e when not !emitted ->
      let bt = Printexc.get_raw_backtrace () in
      write path
        (Json.Obj
           [
             ("bench", Json.String bench);
             ("error", Json.String (Printexc.to_string e));
           ]);
      Printexc.raise_with_backtrace e bt
