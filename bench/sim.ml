(* sim — CONGEST engine hot-path benchmark.

   Two questions, one artifact (BENCH_sim.json):

   1. How much faster is the flat-array driver ({!Mincut_congest.Network})
      than the seed driver preserved as {!Mincut_congest.Network_reference}?
      Both execute the same BFS flooding program on the lint replay
      workloads; audits must agree exactly (the bench fails otherwise),
      and the artifact records rounds/sec, messages/sec and minor-heap
      words per run for each driver.

   2. Does the domain fan-out pay for itself without changing answers?
      The exact pipeline runs with workers=1 and workers=4; summaries
      must be bit-identical (value, side, rounds, breakdown) — that
      equality is asserted here and in CI's quick mode. *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Rng = Mincut_util.Rng
module Json = Mincut_util.Json
module Stats = Mincut_util.Stats
module Network = Mincut_congest.Network
module Reference = Mincut_congest.Network_reference
module Primitives = Mincut_congest.Primitives
module Replay = Mincut_analysis.Replay
module Scaling = Mincut_analysis.Scaling
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost
module Residency = Mincut_store.Residency
module Metrics = Mincut_serve.Metrics
module Store_metrics = Mincut_serve.Store_metrics

(* CI smoke mode: fewer iterations, same assertions. *)
let quick = ref false

(* Same workloads the lint replay pass pins down. *)
let workloads () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
  ]

(* Wall time (ms) and minor-heap words for [iters] runs of [f]. *)
let measure ~iters f =
  ignore (f ());
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let words = Gc.minor_words () -. w0 in
  (ms, words /. float_of_int iters)

let driver_stats name ~iters ~(audit : Network.audit) (ms, words_per_run) =
  let secs = ms /. 1000.0 in
  let runs = float_of_int iters in
  ( name,
    Json.Obj
      [
        ("ms_total", Json.Float ms);
        ("rounds_per_sec", Json.Float (float_of_int audit.Network.rounds *. runs /. secs));
        ("messages_per_sec", Json.Float (float_of_int audit.Network.total_messages *. runs /. secs));
        ("minor_words_per_run", Json.Float words_per_run);
      ],
    ms )

let bench_drivers ~iters (wname, g) =
  let prog = Primitives.bfs_program g ~root:0 in
  let flat () = snd (Network.run ~words:(fun _ -> 1) g prog) in
  let reference () = snd (Reference.run ~words:(fun _ -> 1) g prog) in
  let a_flat = flat () and a_ref = reference () in
  (match Replay.diff_audits a_flat a_ref with
  | [] -> ()
  | diffs ->
      failwith
        (Printf.sprintf "sim: driver audits diverge on %s: %s" wname
           (String.concat "; " diffs)));
  let name, obj, flat_ms = driver_stats "flat" ~iters ~audit:a_flat (measure ~iters flat) in
  let rname, robj, ref_ms =
    driver_stats "reference" ~iters ~audit:a_ref (measure ~iters reference)
  in
  let speedup = ref_ms /. flat_ms in
  Printf.printf
    "  %-7s n=%-3d m=%-3d rounds=%-3d msgs=%-4d  flat %.1f ms, reference %.1f ms  => %.2fx\n%!"
    wname (Graph.n g) (Graph.m g) a_flat.Network.rounds a_flat.Network.total_messages
    flat_ms ref_ms speedup;
  ( wname,
    speedup,
    Json.Obj
      [
        ("workload", Json.String wname);
        ("n", Json.Int (Graph.n g));
        ("m", Json.Int (Graph.m g));
        ("rounds", Json.Int a_flat.Network.rounds);
        ("messages", Json.Int a_flat.Network.total_messages);
        ("iterations", Json.Int iters);
        (name, obj);
        (rname, robj);
        ("speedup_flat_over_reference", Json.Float speedup);
        ("audits_equal", Json.Bool true);
      ] )

let bench_parallel ~solves g =
  let solve workers () =
    Array.init solves (fun i ->
        Api.min_cut ~params:Params.fast ~algorithm:Api.Exact_small_lambda
          ~seed:i ~workers g)
  in
  let seq = solve 1 () in
  let t0 = Unix.gettimeofday () in
  let seq2 = solve 1 () in
  let seq_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let t0 = Unix.gettimeofday () in
  let par = solve 4 () in
  let par_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let identical =
    Array.for_all2 Workloads.identical seq par
    && Array.for_all2 Workloads.identical seq seq2
  in
  if not identical then
    failwith "sim: parallel exact pipeline diverged from sequential";
  let speedup = seq_ms /. par_ms in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "  parallel exact: %d solves, workers 1: %.1f ms, workers 4: %.1f ms \
     => %.2fx, bit-identical=%b (host cores: %d)\n%!"
    solves seq_ms par_ms speedup identical host_cores;
  if host_cores <= 1 then
    Printf.printf
      "  WARNING: host reports 1 core; speedup_par_over_seq measures \
       scheduling overhead, not parallelism\n%!";
  Json.Obj
    [
      ("solves", Json.Int solves);
      ("workers_parallel", Json.Int 4);
      ("seq_ms", Json.Float seq_ms);
      ("par_ms", Json.Float par_ms);
      ("speedup_par_over_seq", Json.Float speedup);
      ("speedup_meaningful", Json.Bool (host_cores > 1));
      ("bit_identical", Json.Bool identical);
      ("host_cores", Json.Int host_cores);
    ]

(* The chunked-store n-ladder: stream-generate torus stores (up to
   n > 10⁵ in full mode), traverse them chunk-at-a-time under a
   quarter-working-set budget, and record both the scale measurements
   and the residency counters.  Instruments go through the serving
   layer's Metrics registry, so the artifact also proves the
   store→Metrics export path end to end.  Every point must evict — a
   fully-resident "ladder" measures nothing about the store. *)
let bench_store_ladder () =
  let registry = Metrics.create () in
  let instruments = Store_metrics.instruments registry in
  let sizes = Scaling.store_ladder ~quick:!quick in
  Printf.printf "sim: chunked-store scale ladder (%s, scratch %s)\n%!"
    (if !quick then "quick" else "full")
    Scaling.default_scratch;
  let points =
    List.map
      (fun nreq ->
        let t0 = Unix.gettimeofday () in
        match Scaling.store_sample ~instruments ~seed:9000 nreq with
        | Error e -> failwith (Printf.sprintf "sim: store ladder n=%d: %s" nreq e)
        | Ok s ->
            let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            (* process-wide high-water mark sampled after the point: a
               ladder rung whose eviction counts hold the working set
               down must not be growing this monotone curve either *)
            let rss = Stats.peak_rss_kb () in
            let st = s.Scaling.st_stats in
            if st.Residency.evictions = 0 then
              failwith
                (Printf.sprintf
                   "sim: store ladder n=%d: no evictions under a \
                    quarter-working-set budget"
                   s.Scaling.st_n);
            Printf.printf
              "  n=%-7d chunks=%-3d bfs=%-4d upcast=%-4d charged=%-7d \
               frags=%-4d  hits=%d misses=%d evictions=%d resident=%d/%dB  \
               (%.0f ms, peak rss %s)\n%!"
              s.Scaling.st_n s.Scaling.st_num_chunks s.Scaling.st_bfs_rounds
              s.Scaling.st_upcast_rounds s.Scaling.st_or_rounds
              s.Scaling.st_fragments st.Residency.hits st.Residency.misses
              st.Residency.evictions st.Residency.bytes_resident
              st.Residency.budget ms
              (match rss with
              | Some kb -> Printf.sprintf "%d kB" kb
              | None -> "n/a");
            (s, ms, rss))
      sizes
  in
  if
    (not !quick)
    && not (List.exists (fun (s, _, _) -> s.Scaling.st_n >= 100_000) points)
  then failwith "sim: full store ladder is missing its n >= 1e5 point";
  let report = Scaling.fit_store (List.map (fun (s, _, _) -> s) points) in
  List.iter (fun line -> Printf.printf "  %s\n%!" line) (Scaling.describe report);
  if not report.Scaling.ok then failwith "sim: store ladder envelope fits failed";
  Json.Obj
    [
      ( "points",
        Json.List
          (List.map
             (fun (s, ms, rss) ->
               let extra =
                 [
                   ("ms", Json.Float ms);
                   ( "peak_rss_kb",
                     match rss with Some kb -> Json.Int kb | None -> Json.Null
                   );
                 ]
               in
               match Scaling.store_sample_to_json s with
               | Json.Obj fields -> Json.Obj (fields @ extra)
               | j -> j)
             points) );
      ("fits", Scaling.to_json report);
      ("metrics", Metrics.to_json (Metrics.snapshot registry));
    ]

(* Per-phase round profile of one exact solve per workload: the
   top-level spans of the tree, each with its provenance tag, so the
   artifact records where the rounds go, not just how many. *)
let phase_profile (wname, g) =
  let s = Api.min_cut ~params:Params.fast ~algorithm:Api.Exact_small_lambda ~seed:0 g in
  Json.Obj
    [
      ("workload", Json.String wname);
      ("total_rounds", Json.Int s.Api.rounds);
      ( "phases",
        Json.List
          (List.map
             (fun (sp : Cost.span) ->
               Json.Obj
                 [
                   ("label", Json.String sp.Cost.label);
                   ("rounds", Json.Int sp.Cost.rounds);
                   ("provenance", Json.String (Cost.provenance_name sp.Cost.provenance));
                 ])
             s.Api.cost.Cost.spans) );
    ]

let run () =
  let iters = if !quick then 500 else 20_000 in
  let solves = if !quick then 4 else 16 in
  Printf.printf "sim: engine drivers (%d iterations each)\n%!" iters;
  let rows = List.map (bench_drivers ~iters) (workloads ()) in
  let gnp_speedup =
    List.fold_left (fun acc (w, s, _) -> if w = "gnp24" then s else acc) 0.0 rows
  in
  let parallel = bench_parallel ~solves (Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3) in
  let ladder = bench_store_ladder () in
  let json =
    Json.Obj
      [
        ("bench", Json.String "sim");
        ("quick", Json.Bool !quick);
        ("drivers", Json.List (List.map (fun (_, _, j) -> j) rows));
        ("gnp24_speedup_flat_over_reference", Json.Float gnp_speedup);
        ("parallel_exact", parallel);
        ("store_ladder", ladder);
        ("phase_profiles", Json.List (List.map phase_profile (workloads ())));
      ]
  in
  let write path json =
    let oc = open_out path in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    close_out oc
  in
  let path = "BENCH_sim.json" in
  write path json;
  (* the ladder section also stands alone, so CI can upload it as its
     own artifact without dragging the engine microbenchmarks along *)
  write "BENCH_sim_ladder.json" ladder;
  Printf.printf
    "wrote %s and BENCH_sim_ladder.json (gnp24 flat-vs-reference speedup: \
     %.2fx)\n%!"
    path gnp_speedup
