(* sim — CONGEST engine hot-path benchmark.

   Two questions, one artifact (BENCH_sim.json):

   1. How much faster is the flat-array driver ({!Mincut_congest.Network})
      than the seed driver preserved as {!Mincut_congest.Network_reference}?
      Both execute the same BFS flooding program on the lint replay
      workloads; audits must agree exactly (the bench fails otherwise),
      and the artifact records rounds/sec, messages/sec and minor-heap
      words per run for each driver.

   2. Does the domain fan-out pay for itself without changing answers?
      The exact pipeline runs with workers=1 and workers=4; summaries
      must be bit-identical (value, side, rounds, breakdown) — that
      equality is asserted here and in CI's quick mode. *)

module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Rng = Mincut_util.Rng
module Json = Mincut_util.Json
module Stats = Mincut_util.Stats
module Network = Mincut_congest.Network
module Reference = Mincut_congest.Network_reference
module Primitives = Mincut_congest.Primitives
module Replay = Mincut_analysis.Replay
module Scaling = Mincut_analysis.Scaling
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Cost = Mincut_congest.Cost
module Residency = Mincut_store.Residency
module Pool = Mincut_parallel.Pool
module Metrics = Mincut_serve.Metrics
module Store_metrics = Mincut_serve.Store_metrics

(* CI smoke mode: fewer iterations, same assertions. *)
let quick = ref false

(* Same workloads the lint replay pass pins down. *)
let workloads () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
  ]

(* Wall time (ms) and minor-heap words for [iters] runs of [f]. *)
let measure ~iters f =
  ignore (f ());
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let words = Gc.minor_words () -. w0 in
  (ms, words /. float_of_int iters)

(* Allocation-diet gate for the flat driver: a budget on minor-heap
   words per run, derived from the workload's own audit rather than
   hardcoded per workload, so new replay workloads are covered the day
   they are added.  The coefficients were fitted to the scratch-reusing
   driver (roughly 34 words/message for the payload conses and delivery,
   70 words/round of loop overhead, ~350 fixed) with 10–17% headroom —
   tight enough that the pre-diet driver (which consed a per-round count
   list and rebuilt closures every round: 3049/4153/7047 words on
   torus4/grid5/gnp24) fails all three workloads. *)
let minor_words_budget (audit : Network.audit) =
  350.0
  +. (34.0 *. float_of_int audit.Network.total_messages)
  +. (70.0 *. float_of_int audit.Network.rounds)

let driver_stats name ~iters ~(audit : Network.audit) (ms, words_per_run) =
  let secs = ms /. 1000.0 in
  let runs = float_of_int iters in
  ( name,
    Json.Obj
      [
        ("ms_total", Json.Float ms);
        ("rounds_per_sec", Json.Float (float_of_int audit.Network.rounds *. runs /. secs));
        ("messages_per_sec", Json.Float (float_of_int audit.Network.total_messages *. runs /. secs));
        ("minor_words_per_run", Json.Float words_per_run);
      ],
    ms )

let bench_drivers ~iters (wname, g) =
  let prog = Primitives.bfs_program g ~root:0 in
  let flat () = snd (Network.run ~words:(fun _ -> 1) g prog) in
  let reference () = snd (Reference.run ~words:(fun _ -> 1) g prog) in
  let a_flat = flat () and a_ref = reference () in
  (match Replay.diff_audits a_flat a_ref with
  | [] -> ()
  | diffs ->
      failwith
        (Printf.sprintf "sim: driver audits diverge on %s: %s" wname
           (String.concat "; " diffs)));
  let flat_ms_words = measure ~iters flat in
  let name, obj, flat_ms = driver_stats "flat" ~iters ~audit:a_flat flat_ms_words in
  let rname, robj, ref_ms =
    driver_stats "reference" ~iters ~audit:a_ref (measure ~iters reference)
  in
  let words_budget = minor_words_budget a_flat in
  let flat_words = snd flat_ms_words in
  if flat_words > words_budget then
    failwith
      (Printf.sprintf
         "sim: flat driver allocation regression on %s: %.0f minor words per \
          run exceeds the %.0f-word budget (34/message + 70/round + 350)"
         wname flat_words words_budget);
  let speedup = ref_ms /. flat_ms in
  Printf.printf
    "  %-7s n=%-3d m=%-3d rounds=%-3d msgs=%-4d  flat %.1f ms, reference %.1f ms  => %.2fx\n%!"
    wname (Graph.n g) (Graph.m g) a_flat.Network.rounds a_flat.Network.total_messages
    flat_ms ref_ms speedup;
  ( wname,
    speedup,
    Json.Obj
      [
        ("workload", Json.String wname);
        ("n", Json.Int (Graph.n g));
        ("m", Json.Int (Graph.m g));
        ("rounds", Json.Int a_flat.Network.rounds);
        ("messages", Json.Int a_flat.Network.total_messages);
        ("iterations", Json.Int iters);
        (name, obj);
        (rname, robj);
        ("minor_words_budget", Json.Float words_budget);
        ("speedup_flat_over_reference", Json.Float speedup);
        ("audits_equal", Json.Bool true);
      ] )

let bench_parallel ~solves g =
  let solve workers () =
    Array.init solves (fun i ->
        Api.min_cut ~params:Params.fast ~algorithm:Api.Exact_small_lambda
          ~seed:i ~workers g)
  in
  let stats0 = Pool.stats () in
  let seq = solve 1 () in
  let t0 = Unix.gettimeofday () in
  let seq2 = solve 1 () in
  let seq_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let t0 = Unix.gettimeofday () in
  let par = solve 4 () in
  let par_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let t0 = Unix.gettimeofday () in
  let par2 = solve 4 () in
  let par2_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let stats1 = Pool.stats () in
  let identical =
    Array.for_all2 Workloads.identical seq par
    && Array.for_all2 Workloads.identical seq seq2
    && Array.for_all2 Workloads.identical seq par2
  in
  if not identical then
    failwith "sim: parallel exact pipeline diverged from sequential";
  (* the pool is persistent: the second parallel pass must reuse the
     domains the first one spawned, and the two passes together ran
     every per-tree job through the counted entry point *)
  let spawned = stats1.Pool.spawns - stats0.Pool.spawns in
  if spawned > 3 then
    failwith
      (Printf.sprintf
         "sim: pool spawned %d domains for two workers=4 passes; a \
          persistent pool spawns at most 3 and reuses them"
         spawned);
  if stats1.Pool.tasks <= stats0.Pool.tasks then
    failwith "sim: pool task counter did not advance across the solves";
  let par_ms = min par_ms par2_ms in
  let speedup = seq_ms /. par_ms in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "  parallel exact: %d solves, workers 1: %.1f ms, workers 4: %.1f ms \
     => %.2fx, bit-identical=%b (host cores: %d)\n%!"
    solves seq_ms par_ms speedup identical host_cores;
  Printf.printf
    "  pool: %d domains spawned this bench, %d tasks, %d steals, %d \
     batches (process totals: %d spawns)\n%!"
    spawned
    (stats1.Pool.tasks - stats0.Pool.tasks)
    (stats1.Pool.steals - stats0.Pool.steals)
    (stats1.Pool.batches - stats0.Pool.batches)
    stats1.Pool.spawns;
  (* the speedup gate is only a statement about parallel hardware; a
     1-core host measures scheduling overhead, so it skips with a
     reason instead of failing *)
  if host_cores > 1 then begin
    if speedup < 1.0 then
      failwith
        (Printf.sprintf
           "sim: parallelism does not pay on a %d-core host: workers=4 ran \
            %.2fx the speed of workers=1 (gate: >= 1.0)"
           host_cores speedup)
  end
  else
    Printf.printf
      "  SKIP speedup gate: host reports 1 core; speedup_par_over_seq \
       measures scheduling overhead, not parallelism\n%!";
  Json.Obj
    [
      ("solves", Json.Int solves);
      ("workers_parallel", Json.Int 4);
      ("seq_ms", Json.Float seq_ms);
      ("par_ms", Json.Float par_ms);
      ("speedup_par_over_seq", Json.Float speedup);
      ("speedup_meaningful", Json.Bool (host_cores > 1));
      ("bit_identical", Json.Bool identical);
      ("host_cores", Json.Int host_cores);
      ( "pool",
        Json.Obj
          [
            ("spawns", Json.Int spawned);
            ("tasks", Json.Int (stats1.Pool.tasks - stats0.Pool.tasks));
            ("steals", Json.Int (stats1.Pool.steals - stats0.Pool.steals));
            ("batches", Json.Int (stats1.Pool.batches - stats0.Pool.batches));
            ("spawns_process_total", Json.Int stats1.Pool.spawns);
          ] );
    ]

(* The chunked-store n-ladder: stream-generate torus stores (up to
   n > 10⁵ in full mode), traverse them chunk-at-a-time under a
   quarter-working-set budget, and record both the scale measurements
   and the residency counters.  Instruments go through the serving
   layer's Metrics registry, so the artifact also proves the
   store→Metrics export path end to end.  Every point must evict — a
   fully-resident "ladder" measures nothing about the store. *)
let bench_store_ladder () =
  let registry = Metrics.create () in
  let instruments = Store_metrics.instruments registry in
  let sizes = Scaling.store_ladder ~quick:!quick in
  Printf.printf "sim: chunked-store scale ladder (%s, scratch %s)\n%!"
    (if !quick then "quick" else "full")
    Scaling.default_scratch;
  let points =
    List.map
      (fun nreq ->
        let t0 = Unix.gettimeofday () in
        match Scaling.store_sample ~instruments ~seed:9000 nreq with
        | Error e -> failwith (Printf.sprintf "sim: store ladder n=%d: %s" nreq e)
        | Ok s ->
            let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            (* process-wide high-water mark sampled after the point: a
               ladder rung whose eviction counts hold the working set
               down must not be growing this monotone curve either *)
            let rss = Stats.peak_rss_kb () in
            let st = s.Scaling.st_stats in
            if st.Residency.evictions = 0 then
              failwith
                (Printf.sprintf
                   "sim: store ladder n=%d: no evictions under a \
                    quarter-working-set budget"
                   s.Scaling.st_n);
            Printf.printf
              "  n=%-7d chunks=%-3d bfs=%-4d upcast=%-4d charged=%-7d \
               frags=%-4d  hits=%d misses=%d evictions=%d resident=%d/%dB  \
               (%.0f ms, peak rss %s)\n%!"
              s.Scaling.st_n s.Scaling.st_num_chunks s.Scaling.st_bfs_rounds
              s.Scaling.st_upcast_rounds s.Scaling.st_or_rounds
              s.Scaling.st_fragments st.Residency.hits st.Residency.misses
              st.Residency.evictions st.Residency.bytes_resident
              st.Residency.budget ms
              (match rss with
              | Some kb -> Printf.sprintf "%d kB" kb
              | None -> "n/a");
            (s, ms, rss))
      sizes
  in
  if
    (not !quick)
    && not (List.exists (fun (s, _, _) -> s.Scaling.st_n >= 100_000) points)
  then failwith "sim: full store ladder is missing its n >= 1e5 point";
  let report = Scaling.fit_store (List.map (fun (s, _, _) -> s) points) in
  List.iter (fun line -> Printf.printf "  %s\n%!" line) (Scaling.describe report);
  if not report.Scaling.ok then failwith "sim: store ladder envelope fits failed";
  (* ROADMAP's bounded-memory gate: climbing the full ladder may only
     grow the process high-water mark by what the chunk budget allows —
     a few multiples of the top rung's residency budget (chunk cache +
     loaded-chunk scratch) plus the O(n) traversal arrays (~128 B/node
     covers the BFS/upcast/DP per-node state) and fixed allocator
     slack.  A store that silently keeps whole rungs resident blows
     through this long before the n >= 1e5 point.  Quick mode skips:
     its rungs are too small for RSS deltas to mean anything. *)
  (if !quick then
     Printf.printf
       "  SKIP rss gate: quick ladder rungs are below RSS measurement noise\n%!"
   else
     let rungs =
       List.filter_map (fun (s, _, rss) -> Option.map (fun kb -> (s, kb)) rss) points
     in
     match (rungs, List.rev rungs) with
     | (s0, kb0) :: _, (sn, kbn) :: _ when sn.Scaling.st_n > s0.Scaling.st_n ->
         let budget_kb = sn.Scaling.st_stats.Residency.budget / 1024 in
         let scratch_kb = sn.Scaling.st_n * 128 / 1024 in
         let allowed_kb = (2 * budget_kb) + scratch_kb + 8192 in
         let growth_kb = kbn - kb0 in
         Printf.printf
           "  rss gate: n=%d..%d grew peak rss by %d kB (allowed %d kB = \
            2x%d budget + %d scratch + 8192 slack)\n%!"
           s0.Scaling.st_n sn.Scaling.st_n growth_kb allowed_kb budget_kb
           scratch_kb;
         if growth_kb > allowed_kb then
           failwith
             (Printf.sprintf
                "sim: store ladder peak rss grew %d kB from n=%d to n=%d; \
                 the chunk budget only allows %d kB"
                growth_kb s0.Scaling.st_n sn.Scaling.st_n allowed_kb)
     | _ ->
         Printf.printf
           "  SKIP rss gate: peak-rss readings unavailable on this host\n%!");
  Json.Obj
    [
      ( "points",
        Json.List
          (List.map
             (fun (s, ms, rss) ->
               let extra =
                 [
                   ("ms", Json.Float ms);
                   ( "peak_rss_kb",
                     match rss with Some kb -> Json.Int kb | None -> Json.Null
                   );
                 ]
               in
               match Scaling.store_sample_to_json s with
               | Json.Obj fields -> Json.Obj (fields @ extra)
               | j -> j)
             points) );
      ("fits", Scaling.to_json report);
      ("metrics", Metrics.to_json (Metrics.snapshot registry));
    ]

(* Per-phase round profile of one exact solve per workload: the
   top-level spans of the tree, each with its provenance tag, so the
   artifact records where the rounds go, not just how many. *)
let phase_profile (wname, g) =
  let s = Api.min_cut ~params:Params.fast ~algorithm:Api.Exact_small_lambda ~seed:0 g in
  Json.Obj
    [
      ("workload", Json.String wname);
      ("total_rounds", Json.Int s.Api.rounds);
      ( "phases",
        Json.List
          (List.map
             (fun (sp : Cost.span) ->
               Json.Obj
                 [
                   ("label", Json.String sp.Cost.label);
                   ("rounds", Json.Int sp.Cost.rounds);
                   ("provenance", Json.String (Cost.provenance_name sp.Cost.provenance));
                 ])
             s.Api.cost.Cost.spans) );
    ]

(* every sim gate (driver audits, allocation budget, pool reuse, store
   ladder, rss) fires before the end-of-run writes, so the whole bench
   runs under [Artifact.guard] *)
let run () =
  Artifact.guard ~path:"BENCH_sim.json" ~bench:"sim"
  @@ fun emit ->
  let iters = if !quick then 500 else 20_000 in
  let solves = if !quick then 4 else 16 in
  Printf.printf "sim: engine drivers (%d iterations each)\n%!" iters;
  let rows = List.map (bench_drivers ~iters) (workloads ()) in
  let gnp_speedup =
    List.fold_left (fun acc (w, s, _) -> if w = "gnp24" then s else acc) 0.0 rows
  in
  let parallel = bench_parallel ~solves (Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3) in
  let ladder = bench_store_ladder () in
  let json =
    Json.Obj
      [
        ("bench", Json.String "sim");
        ("quick", Json.Bool !quick);
        ("drivers", Json.List (List.map (fun (_, _, j) -> j) rows));
        ("gnp24_speedup_flat_over_reference", Json.Float gnp_speedup);
        ("parallel_exact", parallel);
        ("store_ladder", ladder);
        ("phase_profiles", Json.List (List.map phase_profile (workloads ())));
      ]
  in
  let path = "BENCH_sim.json" in
  emit json;
  (* the ladder section also stands alone, so CI can upload it as its
     own artifact without dragging the engine microbenchmarks along *)
  Artifact.write "BENCH_sim_ladder.json" ladder;
  Printf.printf
    "wrote %s and BENCH_sim_ladder.json (gnp24 flat-vs-reference speedup: \
     %.2fx)\n%!"
    path gnp_speedup
