(* Workload definitions shared by the experiments.  Each experiment of
   EXPERIMENTS.md names one of these families with its parameters. *)

module Rng = Mincut_util.Rng
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Tree = Mincut_graph.Tree

(* Supercritical Erdős–Rényi: connected w.h.p., diameter O(log n) — the
   family for n-sweeps where D must stay small.  The certifier's
   scaling ladder uses the same family, so the definition lives there. *)
let gnp_supercritical ~seed n = Mincut_analysis.Scaling.supercritical ~seed n

(* Diameter-controlled family: λ = 2 stays fixed, D grows linearly. *)
let cliques_path ~length = Generators.path_of_cliques ~clique:8 ~length

(* λ-controlled family. *)
let planted ~seed ~n ~lambda =
  let rng = Rng.create seed in
  Generators.planted_cut ~rng ~n ~cut_edges:lambda ~p_in:0.7 ()

(* Planted family with shuffled edge ids: the deterministic packing's
   id-based tie-breaking must not be allowed to see the construction
   order, or the first MST trivially 1-respects the planted cut. *)
let shuffled_planted ~seed ~n ~lambda =
  let g = 
    let rng = Rng.create seed in
    Generators.planted_cut ~rng ~n ~cut_edges:lambda ~p_in:0.7 ()
  in
  let triples =
    Array.of_list (Graph.fold_edges (fun acc e -> (e.Graph.u, e.Graph.v, e.Graph.w) :: acc) [] g)
  in
  let rng = Rng.create (seed * 31 + 7) in
  Rng.shuffle rng triples;
  Graph.of_array ~n triples

let diameter_of g = Tree.height (Tree.bfs_tree g ~root:0)

let sqrt_n_plus_d g =
  let n = Graph.n g in
  let d = diameter_of g in
  ceil (sqrt (float_of_int n)) +. float_of_int d

(* The correctness suite for T1: every deterministic family with its
   known λ plus seeded random ones checked against Stoer–Wagner. *)
let t1_suite () =
  let rng = Rng.create 0xBEEF in
  [
    ("ring-32", Generators.ring 32);
    ("complete-16", Generators.complete 16);
    ("grid-8x8", Generators.grid 8 8);
    ("torus-6x6", Generators.torus 6 6);
    ("hypercube-6", Generators.hypercube 6);
    ("wheel-24", Generators.wheel 24);
    ("barbell-10", Generators.barbell 10);
    ("dumbbell-8-6", Generators.dumbbell 8 6);
    ("cliques-path-8x6", Generators.path_of_cliques ~clique:8 ~length:6);
    ("gnp-48", Generators.gnp_connected ~rng 48 0.2);
    ("gnp-64-weighted",
     Generators.gnp_connected ~rng ~weights:{ Generators.wmin = 1; wmax = 6 } 64 0.15);
    ("planted-64-3", Generators.planted_cut ~rng ~n:64 ~cut_edges:3 ~p_in:0.5 ());
    ("regular-40-4", Generators.random_regular ~rng 40 4);
  ]

(* ------------------------------------------------------------------ *)
(* Serve throughput: cold vs warm-cache queries through the service    *)
(* ------------------------------------------------------------------ *)

module Serve = Mincut_serve.Service
module Serve_request = Mincut_serve.Request
module Serve_json = Mincut_serve.Json
module Api = Mincut_core.Api

(* The query zoo: every T1 family under several algorithm/seed mixes —
   the repeat-heavy request stream a long-lived deployment sees. *)
let serve_zoo () =
  let algos = [ Api.Exact_small_lambda; Api.Exact_two_respect; Api.Approx 0.5 ] in
  List.concat_map
    (fun (_, g) ->
      List.map (fun algorithm -> Serve_request.make ~algorithm ~seed:1 g) algos)
    (t1_suite ())

let time_pass f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let identical (a : Api.summary) (b : Api.summary) =
  a.Api.value = b.Api.value && a.Api.rounds = b.Api.rounds
  && Mincut_util.Bitset.equal a.Api.side b.Api.side
  && a.Api.breakdown = b.Api.breakdown
  && Mincut_congest.Cost.equal a.Api.cost b.Api.cost

(* Emits BENCH_serve.json: the perf trajectory later serving PRs must
   beat.  Headline figures: cold vs warm per-query latency (the ≥10×
   memoization claim) and batched cold throughput on the worker pool. *)
let serve_throughput () =
  Artifact.guard ~path:"BENCH_serve.json" ~bench:"serve-throughput"
  @@ fun emit ->
  let service = Serve.create () in
  let zoo = serve_zoo () in
  let queries = List.length zoo in
  let cold, cold_ms = time_pass (fun () -> List.map (Serve.solve service) zoo) in
  let warm_passes = 5 in
  let warm_results = ref [] in
  let _, warm_ms_total =
    time_pass (fun () ->
        for _ = 1 to warm_passes do
          warm_results := List.map (Serve.solve service) zoo
        done)
  in
  let warm_ms = warm_ms_total /. float_of_int warm_passes in
  let warm = !warm_results in
  let all_identical =
    List.for_all2
      (fun (a : Serve_request.response) (b : Serve_request.response) ->
        b.Serve_request.cached
        && identical a.Serve_request.summary b.Serve_request.summary)
      cold warm
  in
  (* batched cold pass on the worker pool: a fresh service with an
     explicit multi-domain pool, everything submitted up front, one
     flush — answers must match the sequential cold pass bit for bit *)
  let pooled = Serve.create ~config:{ Serve.default_config with Serve.workers = 4 } () in
  let batch, batch_ms =
    time_pass (fun () ->
        List.iter (fun r -> ignore (Serve.submit pooled r)) zoo;
        (Serve.flush pooled).Serve.answered)
  in
  let batch_identical =
    List.for_all2
      (fun (a : Serve_request.response) (_, (b : Serve_request.response)) ->
        identical a.Serve_request.summary b.Serve_request.summary)
      cold batch
  in
  let speedup = cold_ms /. warm_ms in
  let snap = Serve.snapshot service in
  let json =
    Serve_json.Obj
      [
        ("bench", Serve_json.String "serve-throughput");
        ("queries", Serve_json.Int queries);
        ("cold_ms_total", Serve_json.Float cold_ms);
        ("cold_ms_per_query", Serve_json.Float (cold_ms /. float_of_int queries));
        ("warm_ms_total", Serve_json.Float warm_ms);
        ("warm_ms_per_query", Serve_json.Float (warm_ms /. float_of_int queries));
        ("warm_passes", Serve_json.Int warm_passes);
        ("speedup_warm_over_cold", Serve_json.Float speedup);
        ("batch_cold_ms_total", Serve_json.Float batch_ms);
        ("batch_answers", Serve_json.Int (List.length batch));
        ("pool_workers", Serve_json.Int (Serve.config pooled).Serve.workers);
        ("batch_bit_identical", Serve_json.Bool batch_identical);
        ("cache_hits", Serve_json.Int (Serve.cache_hits service));
        ("cache_misses", Serve_json.Int (Serve.cache_misses service));
        ("warm_bit_identical", Serve_json.Bool all_identical);
        ("metrics", Mincut_serve.Metrics.to_json snap);
      ]
  in
  let path = "BENCH_serve.json" in
  emit json;
  Printf.printf
    "serve throughput: %d queries, cold %.1f ms (%.2f ms/q), warm %.2f ms \
     (%.4f ms/q), speedup %.0fx, batch(cold,%d workers) %.1f ms, identical=%b\n"
    queries cold_ms
    (cold_ms /. float_of_int queries)
    warm_ms
    (warm_ms /. float_of_int queries)
    speedup (Serve.config pooled).Serve.workers batch_ms
    (all_identical && batch_identical);
  Printf.printf "wrote %s\n" path
