(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe            # every experiment + microbenches
     dune exec bench/main.exe -- t2 f3   # a selection
     dune exec bench/main.exe -- tables  # tables only (no bechamel)

   Each experiment id (t1..t5, f1..f5) matches DESIGN.md §4 and
   EXPERIMENTS.md. *)

let experiments =
  [
    ("w0", Experiments.w0);
    ("t1", Experiments.t1);
    ("t2", Experiments.t2);
    ("t3", Experiments.t3);
    ("t4", Experiments.t4);
    ("t5", Experiments.t5);
    ("f1", Experiments.f1);
    ("f2", Experiments.f2);
    ("f3", Experiments.f3);
    ("f4", Experiments.f4);
    ("f5", Experiments.f5);
    ("a1", Experiments.a1);
    ("a2", Experiments.a2);
    ("a3", Experiments.a3);
    ("a4", Experiments.a4);
    ("serve", Workloads.serve_throughput);
    ("delta", Delta.run);
    ("sim", Sim.run);
  ]

let run_one id =
  match List.assoc_opt id experiments with
  | Some f ->
      Printf.printf "== experiment %s ==\n%!" id;
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "(%s finished in %.1fs)\n\n%!" id (Unix.gettimeofday () -. t0)
  | None -> Printf.eprintf "unknown experiment %S\n" id

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* "--csv DIR" anywhere in the arguments activates CSV artifacts;
     "--quick" shrinks iteration counts (CI smoke runs) *)
  let args =
    let rec strip = function
      | "--csv" :: dir :: rest ->
          Mincut_util.Table.set_csv_dir (Some dir);
          strip rest
      | "--quick" :: rest ->
          Sim.quick := true;
          strip rest
      | x :: rest -> x :: strip rest
      | [] -> []
    in
    strip args
  in
  match args with
  | [] ->
      List.iter (fun (id, _) -> run_one id) experiments;
      Microbench.run ()
  | [ "tables" ] -> List.iter (fun (id, _) -> run_one id) experiments
  | [ "bechamel" ] -> Microbench.run ()
  | ids -> List.iter run_one ids
