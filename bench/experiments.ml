(* The experiment harness: one function per table/figure of
   EXPERIMENTS.md, each printing the rows/series it defines. *)

module Graph = Mincut_graph.Graph
module Tree = Mincut_graph.Tree
module Generators = Mincut_graph.Generators
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Stats = Mincut_util.Stats
module Table = Mincut_util.Table
module Cost = Mincut_congest.Cost
module Config = Mincut_congest.Config
module Primitives = Mincut_congest.Primitives
module Network = Mincut_congest.Network
module Fragments = Mincut_mst.Fragments
module Boruvka_dist = Mincut_mst.Boruvka_dist
module Tree_packing = Mincut_treepack.Tree_packing
module One_respect = Mincut_core.One_respect
module Exact = Mincut_core.Exact
module Approx = Mincut_core.Approx
module Ghaffari_kuhn = Mincut_core.Ghaffari_kuhn
module Su = Mincut_core.Su
module Params = Mincut_core.Params

let fast = Params.fast

(* ------------------------------------------------------------------ *)
(* T1: exactness against ground truth                                  *)
(* ------------------------------------------------------------------ *)

let t1 () =
  let t =
    Table.create ~title:"T1: exact distributed min cut vs Stoer-Wagner (ground truth)"
      ~columns:[ "graph"; "n"; "m"; "D"; "lambda(SW)"; "lambda(dist)"; "agree"; "trees" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (name, g) ->
      let sw = (Stoer_wagner.run g).Stoer_wagner.value in
      let r = Exact.run ~params:fast g in
      if r.Exact.value <> sw then all_ok := false;
      Table.add_row t
        [
          name;
          string_of_int (Graph.n g);
          string_of_int (Graph.m g);
          string_of_int (Workloads.diameter_of g);
          string_of_int sw;
          string_of_int r.Exact.value;
          (if r.Exact.value = sw then "yes" else "NO");
          string_of_int r.Exact.trees_used;
        ])
    (Workloads.t1_suite ());
  Table.print t;
  Printf.printf "T1 verdict: %s\n\n" (if !all_ok then "all exact" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* T2: round complexity scaling with n (Theorem 2.1)                   *)
(* ------------------------------------------------------------------ *)

let t2 () =
  let t =
    Table.create
      ~title:
        "T2: Theorem 2.1 rounds on G(n, 8 ln n / n) -- rounds / (sqrt n + D) should stay \
         near-flat (up to polylog)"
      ~columns:[ "family"; "n"; "D"; "sqrt(n)+D"; "rounds(1-respect)"; "ratio" ]
  in
  let series = ref [] in
  let row family g =
    let n = Graph.n g in
    let tree = Tree.bfs_tree g ~root:0 in
    let r = One_respect.run ~params:fast g tree in
    let base = Workloads.sqrt_n_plus_d g in
    let rounds = r.One_respect.cost.Cost.rounds in
    if family = "gnp" then series := (float_of_int n, float_of_int rounds) :: !series;
    Table.add_row t
      [
        family;
        string_of_int n;
        string_of_int (Workloads.diameter_of g);
        Table.fmt_float base;
        string_of_int rounds;
        Table.fmt_ratio (float_of_int rounds /. base);
      ]
  in
  List.iter
    (fun n -> row "gnp" (Workloads.gnp_supercritical ~seed:(n + 1) n))
    [ 64; 128; 256; 512; 1024; 2048; 4096 ];
  List.iter (fun k -> row "torus" (Generators.torus k k)) [ 8; 16; 32; 64 ];
  Table.print t;
  let expo = Stats.growth_exponent (Array.of_list (List.rev !series)) in
  Printf.printf
    "T2 growth exponent of rounds vs n: %.2f (0.5 = sqrt scaling; 1.0 would be linear)\n\n"
    expo

(* ------------------------------------------------------------------ *)
(* T3: the D term                                                      *)
(* ------------------------------------------------------------------ *)

let t3 () =
  let t =
    Table.create
      ~title:"T3: rounds track the diameter (path-of-cliques, lambda fixed at 2)"
      ~columns:[ "n"; "D"; "sqrt(n)+D"; "rounds(1-respect)"; "ratio" ]
  in
  List.iter
    (fun length ->
      let g = Workloads.cliques_path ~length in
      let tree = Tree.bfs_tree g ~root:0 in
      let r = One_respect.run ~params:fast g tree in
      let base = Workloads.sqrt_n_plus_d g in
      Table.add_row t
        [
          string_of_int (Graph.n g);
          string_of_int (Workloads.diameter_of g);
          Table.fmt_float base;
          string_of_int r.One_respect.cost.Cost.rounds;
          Table.fmt_ratio (float_of_int r.One_respect.cost.Cost.rounds /. base);
        ])
    [ 4; 8; 16; 32; 64; 128 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* T4: poly(lambda) dependence of the exact algorithm                  *)
(* ------------------------------------------------------------------ *)

let t4 () =
  let t =
    Table.create
      ~title:
        "T4: exact algorithm vs lambda (planted cuts, n=256): trees scale with lambda, \
         per-tree rounds do not"
      ~columns:
        [ "lambda"; "lambda(dist)"; "trees"; "total rounds"; "rounds/tree"; "exact?" ]
  in
  List.iter
    (fun lambda ->
      let g = Workloads.planted ~seed:lambda ~n:256 ~lambda in
      let sw = (Stoer_wagner.run g).Stoer_wagner.value in
      let trees = Tree_packing.recommended_trees ~n:256 ~lambda_hint:lambda in
      let r = Exact.run ~params:fast ~trees g in
      Table.add_row t
        [
          string_of_int sw;
          string_of_int r.Exact.value;
          string_of_int trees;
          string_of_int r.Exact.cost.Cost.rounds;
          string_of_int (r.Exact.cost.Cost.rounds / trees);
          (if r.Exact.value = sw then "yes" else "NO");
        ])
    [ 1; 2; 3; 4; 5; 6; 8 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* F1: algorithm comparison series                                     *)
(* ------------------------------------------------------------------ *)

let f1 () =
  let t =
    Table.create
      ~title:
        "F1: rounds series, ours vs baselines on G(n, 8 ln n / n) (quality in \
         parentheses where ground truth is affordable)"
      ~columns:[ "n"; "exact"; "approx(0.5)"; "gk(0.5)"; "su(0.5)"; "cut e/a/g/s"; "lambda" ]
  in
  List.iter
    (fun n ->
      let g = Workloads.gnp_supercritical ~seed:(2 * n) n in
      let exact = Exact.run ~params:fast ~trees:8 g in
      let approx = Approx.run ~params:fast ~trees:8 ~rng:(Rng.create 1) ~epsilon:0.5 g in
      let gk = Ghaffari_kuhn.run ~params:fast ~epsilon:0.5 g in
      let su = Su.run ~params:fast ~rng:(Rng.create 2) ~epsilon:0.5 g in
      let lambda = if n <= 512 then string_of_int (Stoer_wagner.run g).Stoer_wagner.value else "-" in
      Table.add_row t
        [
          string_of_int n;
          string_of_int exact.Exact.cost.Cost.rounds;
          string_of_int approx.Approx.cost.Cost.rounds;
          string_of_int gk.Ghaffari_kuhn.cost.Cost.rounds;
          string_of_int su.Su.cost.Cost.rounds;
          Printf.sprintf "%d/%d/%d/%d" exact.Exact.value approx.Approx.value
            gk.Ghaffari_kuhn.value su.Su.value;
          lambda;
        ])
    [ 64; 128; 256; 512; 1024 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* F2: approximation quality vs epsilon                                *)
(* ------------------------------------------------------------------ *)

let f2 () =
  let t =
    Table.create
      ~title:
        "F2: observed approximation ratio vs epsilon (planted n=128 lambda=4, 5 seeds \
         each; ours should hug 1.0, GK may exceed it but stays below 2+eps)"
      ~columns:[ "epsilon"; "ours mean"; "ours worst"; "gk mean"; "gk worst"; "bound gk" ]
  in
  List.iter
    (fun epsilon ->
      let ratios_ours = ref [] and ratios_gk = ref [] in
      for seed = 1 to 5 do
        let g = Workloads.planted ~seed ~n:128 ~lambda:4 in
        let lambda = float_of_int (Stoer_wagner.run g).Stoer_wagner.value in
        let a = Approx.run ~params:fast ~trees:16 ~rng:(Rng.create seed) ~epsilon g in
        let gk = Ghaffari_kuhn.run ~params:fast ~epsilon g in
        ratios_ours := (float_of_int a.Approx.value /. lambda) :: !ratios_ours;
        ratios_gk := (float_of_int gk.Ghaffari_kuhn.value /. lambda) :: !ratios_gk
      done;
      let s_ours = Stats.summarize (Array.of_list !ratios_ours) in
      let s_gk = Stats.summarize (Array.of_list !ratios_gk) in
      Table.add_row t
        [
          Printf.sprintf "%.2f" epsilon;
          Table.fmt_ratio s_ours.Stats.mean;
          Table.fmt_ratio s_ours.Stats.max;
          Table.fmt_ratio s_gk.Stats.mean;
          Table.fmt_ratio s_gk.Stats.max;
          Printf.sprintf "%.2f" (2.0 +. epsilon);
        ])
    [ 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* F3: tree packing in practice vs Thorup's bound                      *)
(* ------------------------------------------------------------------ *)

let f3 () =
  let t =
    Table.create
      ~title:
        "F3: packed trees until one 1-respects a minimum cut (5 seeds per family) vs \
         Thorup's lambda^7 log^3 n bound -- tiny packings suffice in practice"
      ~columns:[ "family"; "lambda"; "mean trees"; "worst trees"; "theory bound" ]
  in
  let measure family mk =
    let needed = ref [] and lambdas = ref [] in
    for seed = 10 to 14 do
      let g = mk seed in
      let sw = Stoer_wagner.run g in
      let in_cut = Bitset.mem sw.Stoer_wagner.side in
      lambdas := float_of_int sw.Stoer_wagner.value :: !lambdas;
      let p = Tree_packing.greedy g ~trees:64 in
      let first =
        match Tree_packing.first_one_respecting g p ~in_cut with
        | Some i -> i + 1
        | None -> 64
      in
      needed := float_of_int first :: !needed
    done;
    let s = Stats.summarize (Array.of_list !needed) in
    let lambda = Stats.mean (Array.of_list !lambdas) in
    Table.add_row t
      [
        family;
        Table.fmt_float lambda;
        Table.fmt_float s.Stats.mean;
        Table.fmt_float s.Stats.max;
        Printf.sprintf "%.1e"
          (Tree_packing.theory_trees ~n:128 ~lambda:(int_of_float lambda));
      ]
  in
  measure "planted-128-l2" (fun seed -> Workloads.shuffled_planted ~seed ~n:128 ~lambda:2);
  measure "planted-128-l6" (fun seed -> Workloads.shuffled_planted ~seed ~n:128 ~lambda:6);
  measure "gnp-64-weighted" (fun seed ->
      let rng = Rng.create (seed * 13) in
      Generators.gnp_connected ~rng
        ~weights:{ Generators.wmin = 1; wmax = 8 }
        64 0.15);
  measure "regular-64-4" (fun seed ->
      let rng = Rng.create (seed * 17) in
      Generators.random_regular ~rng 64 4);
  measure "complete-16-weighted" (fun seed ->
      let rng = Rng.create (seed * 19) in
      Generators.complete ~weights:{ Generators.wmin = 1; wmax = 4 } ~rng 16);
  measure "torus-8x8" (fun _ -> Generators.torus 8 8);
  Table.print t

(* ------------------------------------------------------------------ *)
(* F4: exact-vs-sampling crossover in lambda                           *)
(* ------------------------------------------------------------------ *)

let f4 () =
  let t =
    Table.create
      ~title:
        "F4: rounds of exact (trees scale with lambda) vs (1+eps)-approx (flat) -- the \
         crossover motivates the paper's reduction (planted n=256)"
      ~columns:[ "lambda"; "exact rounds"; "approx(0.3) rounds"; "winner" ]
  in
  List.iter
    (fun lambda ->
      let g = Workloads.planted ~seed:(100 + lambda) ~n:256 ~lambda in
      (* the exact algorithm's poly(lambda) enters through the packing
         budget; the approx algorithm's skeleton budget stays flat *)
      let trees = min 96 (max 4 (4 * lambda)) in
      let e = Exact.run ~params:fast ~trees g in
      let a = Approx.run ~params:fast ~trees:8 ~rng:(Rng.create 3) ~epsilon:0.3 g in
      Table.add_row t
        [
          string_of_int lambda;
          string_of_int e.Exact.cost.Cost.rounds;
          string_of_int a.Approx.cost.Cost.rounds;
          (if e.Exact.cost.Cost.rounds <= a.Approx.cost.Cost.rounds then "exact"
           else "approx");
        ])
    [ 1; 2; 4; 8; 12; 16 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* T5: CONGEST discipline audit                                        *)
(* ------------------------------------------------------------------ *)

let t5 () =
  let t =
    Table.create
      ~title:
        "T5: engine audit of the real message-level programs (word budget = 4 words of \
         O(log n) bits; violations raise, so running = passing)"
      ~columns:
        [ "program"; "graph"; "rounds"; "messages"; "max words/msg"; "bits/word" ]
  in
  let row name gname n (audit : Network.audit) =
    Table.add_row t
      [
        name;
        gname;
        string_of_int audit.Network.rounds;
        string_of_int audit.Network.total_messages;
        string_of_int audit.Network.max_words;
        string_of_int (Config.bits_per_word ~n);
      ]
  in
  let profiles = ref [] in
  List.iter
    (fun (gname, g) ->
      let n = Graph.n g in
      let tree, _, a_bfs = Primitives.bfs_tree_audited g ~root:0 in
      profiles := (gname, a_bfs.Network.messages_per_round) :: !profiles;
      row "bfs-tree flood" gname n a_bfs;
      let _, _, a_cc =
        Primitives.convergecast_sum_audited g ~tree ~values:(Array.make n 1)
      in
      row "convergecast" gname n a_cc;
      let _, _, a_bc =
        Primitives.broadcast_items_audited g ~tree ~items:(Array.init 16 (fun i -> i))
      in
      row "pipelined broadcast x16" gname n a_bc;
      let _, _, a_up =
        Primitives.upcast_distinct_audited g ~tree
          ~initial:(Array.init n (fun v -> [ v mod 23 ]))
      in
      row "pipelined upcast" gname n a_up)
    [ ("grid-12x12", Generators.grid 12 12);
      ("gnp-256", Workloads.gnp_supercritical ~seed:5 256) ];
  Table.print t;
  List.iter
    (fun (gname, profile) ->
      let peak = Array.fold_left max 0 profile in
      Printf.printf "T5 congestion profile (%s, bfs flood): peak %d msgs/round over %d rounds\n"
        gname peak (Array.length profile))
    (List.rev !profiles);
  (* the distributed MST exercises all four message kinds; its audit is
     implicit in it completing without a Model_violation *)
  let r = Boruvka_dist.run (Workloads.gnp_supercritical ~seed:6 128) in
  Printf.printf
    "T5 addendum: distributed Boruvka MST on gnp-128 ran %d phases / %d rounds with no \
     model violations\n\n"
    r.Boruvka_dist.phases r.Boruvka_dist.cost.Cost.rounds

(* ------------------------------------------------------------------ *)
(* F5: Figure-1 anatomy: fragments, merging nodes, T'F                 *)
(* ------------------------------------------------------------------ *)

let f5 () =
  let t =
    Table.create
      ~title:
        "F5: fragment anatomy (the paper's Figure 1, measured): all three structures \
         stay O(sqrt n)"
      ~columns:
        [ "graph"; "n"; "sqrt n"; "fragments"; "max frag height"; "merging nodes"; "|T'F|" ]
  in
  let row name g =
    let n = Graph.n g in
    let tree = Tree.bfs_tree g ~root:0 in
    let r = One_respect.run ~params:fast g tree in
    let s = r.One_respect.stats in
    Table.add_row t
      [
        name;
        string_of_int n;
        string_of_int (int_of_float (ceil (sqrt (float_of_int n))));
        string_of_int s.One_respect.fragment_count;
        string_of_int s.One_respect.max_fragment_height;
        string_of_int s.One_respect.merging_count;
        string_of_int s.One_respect.tf_prime_size;
      ]
  in
  List.iter (fun k -> row (Printf.sprintf "grid-%dx%d" k k) (Generators.grid k k))
    [ 8; 16; 32; 64 ];
  List.iter
    (fun length -> row (Printf.sprintf "cliques-path-%d" length) (Workloads.cliques_path ~length))
    [ 8; 32; 128 ];
  List.iter
    (fun legs ->
      let leg_length = 4 * legs in
      row
        (Printf.sprintf "spider-%dx%d" legs leg_length)
        (Generators.spider ~legs ~leg_length))
    [ 4; 8; 16; 32 ];
  row "gnp-1024 (shallow)" (Workloads.gnp_supercritical ~seed:3072 1024);
  Table.print t

(* ------------------------------------------------------------------ *)
(* A1: fragment-target ablation                                        *)
(* ------------------------------------------------------------------ *)

let a1 () =
  let t =
    Table.create
      ~title:
        "A1 (ablation): fragment height threshold vs rounds -- sqrt(n) balances \
         fragment-local work against the O(k) global broadcasts (cliques-path, n=1024, \
         tree height 255)"
      ~columns:[ "target"; "fragments"; "max frag height"; "rounds" ]
  in
  let g = Workloads.cliques_path ~length:128 in
  let tree = Tree.bfs_tree g ~root:0 in
  List.iter
    (fun target ->
      let r = One_respect.run ~params:fast ~target g tree in
      Table.add_row t
        [
          string_of_int target;
          string_of_int r.One_respect.stats.One_respect.fragment_count;
          string_of_int r.One_respect.stats.One_respect.max_fragment_height;
          string_of_int r.One_respect.cost.Cost.rounds;
        ])
    [ 4; 8; 16; 32; 64; 128; 256 ];
  Table.print t;
  print_endline
    "A1 reading: tiny targets explode the fragment count k (every broadcast pays \
     O(k)); huge targets push the per-fragment pipelines to O(target); the minimum \
     sits near target = Theta(sqrt n) = 32, as the paper chooses.\n"

(* ------------------------------------------------------------------ *)
(* A2: real engine runs vs analytic schedules                          *)
(* ------------------------------------------------------------------ *)

let a2 () =
  let t =
    Table.create
      ~title:
        "A2 (cross-validation): steps executed as real message programs vs their \
         analytic schedules, phase by phase -- Executed spans come from the engine, \
         Scheduled spans from the Pipeline formulas; deltas concentrate in the \
         phases that actually run real programs"
      ~columns:
        [ "graph"; "phase"; "prov (real/sched)"; "real"; "sched"; "delta" ]
  in
  List.iter
    (fun (name, g) ->
      let tree = Tree.bfs_tree g ~root:0 in
      let real = One_respect.run ~params:Params.default g tree in
      let sched = One_respect.run ~params:fast g tree in
      assert (real.One_respect.cuts = sched.One_respect.cuts);
      (* the five paper phases line up 1:1 across modes — compare spans
         directly by index *)
      List.iter2
        (fun (rs : Cost.span) (ss : Cost.span) ->
          assert (String.equal rs.Cost.label ss.Cost.label);
          Table.add_row t
            [
              name;
              (* "Step N" is enough for the table; the colon ends it *)
              (match String.index_opt rs.Cost.label ':' with
              | Some i -> String.sub rs.Cost.label 0 i
              | None -> rs.Cost.label);
              Printf.sprintf "%s/%s"
                (Cost.provenance_name rs.Cost.provenance)
                (Cost.provenance_name ss.Cost.provenance);
              string_of_int rs.Cost.rounds;
              string_of_int ss.Cost.rounds;
              string_of_int (rs.Cost.rounds - ss.Cost.rounds);
            ])
        real.One_respect.cost.Cost.spans sched.One_respect.cost.Cost.spans;
      let a = real.One_respect.cost.Cost.rounds
      and b = sched.One_respect.cost.Cost.rounds in
      Table.add_row t
        [ name; "total"; "-"; string_of_int a; string_of_int b; string_of_int (a - b) ])
    [
      ("grid-16x16", Generators.grid 16 16);
      ("torus-16x16", Generators.torus 16 16);
      ("gnp-256", Workloads.gnp_supercritical ~seed:9 256);
      ("spider-8x32", Generators.spider ~legs:8 ~leg_length:32);
      ("cliques-path-16", Workloads.cliques_path ~length:16);
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* A3: 1-respect vs 2-respect packing budgets                          *)
(* ------------------------------------------------------------------ *)

let a3 () =
  let t =
    Table.create
      ~title:
        "A3 (extension): 1-respecting (paper) vs 2-respecting (Karger/MN follow-up) \
         -- the 2-respect sweep needs a lambda-independent tree budget (planted n=128)"
      ~columns:
        [ "lambda"; "1R trees"; "1R rounds"; "1R exact"; "2R trees"; "2R rounds"; "2R exact" ]
  in
  List.iter
    (fun lambda ->
      let g = Workloads.shuffled_planted ~seed:(7 * lambda) ~n:128 ~lambda in
      let truth = (Stoer_wagner.run g).Stoer_wagner.value in
      let trees1 = min 96 (max 4 (4 * lambda)) in
      let one = Exact.run ~params:fast ~trees:trees1 g in
      let two = Mincut_core.Two_respect.min_cut ~params:fast ~trees:8 g in
      Table.add_row t
        [
          string_of_int truth;
          string_of_int trees1;
          string_of_int one.Exact.cost.Cost.rounds;
          (if one.Exact.value = truth then "yes" else "NO");
          "8";
          string_of_int two.Mincut_core.Two_respect.cost.Cost.rounds;
          (if two.Mincut_core.Two_respect.value = truth then "yes" else "NO");
        ])
    [ 1; 2; 4; 6; 8 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* A4: the small-lambda specialization frontier                        *)
(* ------------------------------------------------------------------ *)

let a4 () =
  let t =
    Table.create
      ~title:
        "A4 (baseline frontier): Pritchard-Thurimella small-cut detection (O(D)-ish, \
         conclusive only for lambda <= 2) vs the paper's general algorithm"
      ~columns:[ "graph"; "lambda"; "PT verdict"; "PT rounds"; "general rounds" ]
  in
  List.iter
    (fun (name, g) ->
      let lambda = (Stoer_wagner.run g).Stoer_wagner.value in
      let p = Mincut_core.Pritchard.run g in
      let verdict =
        match p.Mincut_core.Pritchard.verdict with
        | Mincut_core.Pritchard.Cut_found { value; _ } -> Printf.sprintf "cut %d" value
        | Mincut_core.Pritchard.Lambda_at_least_3 -> "lambda >= 3"
      in
      let general = Exact.run ~params:fast ~trees:8 g in
      Table.add_row t
        [
          name;
          string_of_int lambda;
          verdict;
          string_of_int p.Mincut_core.Pritchard.cost.Cost.rounds;
          string_of_int general.Exact.cost.Cost.rounds;
        ])
    [
      ("cliques-path-32 (λ=2)", Workloads.cliques_path ~length:32);
      ("spider-8x16 (λ=1)", Generators.spider ~legs:8 ~leg_length:16);
      ("grid-16x16 (λ=2)", Generators.grid 16 16);
      ("torus-12x12 (λ=4)", Generators.torus 12 12);
    ];
  Table.print t;
  print_endline
    "A4 reading: when lambda <= 2 the pre-2014 specialized detectors answer in \
     O~(D) rounds; the paper's contribution is covering every lambda at sqrt(n)+D \
     cost, exactly where the specialists go silent.\n"

(* ------------------------------------------------------------------ *)
(* W0: workload zoo characterization                                   *)
(* ------------------------------------------------------------------ *)

let w0 () =
  let t =
    Table.create
      ~title:
        "W0: workload characterization -- structural regime of every family used by \
         the experiments"
      ~columns:("family" :: Mincut_graph.Metrics.columns @ [ "disjoint trees" ])
  in
  List.iter
    (fun (name, g) ->
      let m = Mincut_graph.Metrics.compute g in
      Table.add_row t
        ((name :: Mincut_graph.Metrics.pp_row m)
        @ [ string_of_int (Tree_packing.disjoint_count g) ]))
    [
      ("gnp-256", Workloads.gnp_supercritical ~seed:1 256);
      ("torus-16x16", Generators.torus 16 16);
      ("grid-16x16", Generators.grid 16 16);
      ("cliques-path-32", Workloads.cliques_path ~length:32);
      ("planted-256-l4", Workloads.planted ~seed:1 ~n:256 ~lambda:4);
      ("spider-16x64", Generators.spider ~legs:16 ~leg_length:64);
      ("hypercube-8", Generators.hypercube 8);
      ("regular-256-4", Generators.random_regular ~rng:(Rng.create 4) 256 4);
      ("wheel-256", Generators.wheel 256);
    ];
  Table.print t
