(* Sustained delta-stream benchmark: the incremental session against
   naive per-version re-solves.

   A seeded 10⁴-op update stream (10³ in --quick) from
   [Generators.delta_stream] is replayed twice over a torus base:

   - timed pass: one [Api.open_session], every delta answered through
     the cheapest valid tier (reuse / cert-solve / rebuild);
   - untimed replay: a fresh session re-applies the same stream,
     checking every per-version λ against a from-scratch Stoer–Wagner
     solve of the live graph and checking the maintained side still
     achieves it, while a naive baseline ([Api.min_cut] on the
     materialized graph, params:fast — what a client without the delta
     layer would run per update) is timed on a fixed subsample and
     extrapolated to the full stream.

   Emits BENCH_delta.json and gates: every λ exact, every side
   achieving, and incremental answers/sec ≥ 5× the naive baseline
   (printed as "delta gate: PASS" — CI greps for it). *)

module Rng = Mincut_util.Rng
module Json = Mincut_util.Json
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Handle = Mincut_graph.Handle
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Api = Mincut_core.Api
module Params = Mincut_core.Params
module Incremental = Mincut_core.Incremental

let speedup_floor = 5.0

(* the whole bench runs under [Artifact.guard]: the stream-rejection
   failwiths fire before the artifact is assembled, and a run they kill
   must still leave a BENCH_delta.json explaining itself *)
let run () =
  Artifact.guard ~path:"BENCH_delta.json" ~bench:"delta-stream"
  @@ fun emit ->
  let quick = !Sim.quick in
  let nops = if quick then 1_000 else 10_000 in
  let sample_every = if quick then 8 else 16 in
  let base = Generators.torus 10 10 in
  let rng = Rng.create 42 in
  let ops = Generators.delta_stream ~rng ~wmax:4 ~base nops in
  let nops = List.length ops in
  (* timed pass: the whole stream through one session *)
  let session = Api.open_session ~params:Params.fast base in
  let t0 = Unix.gettimeofday () in
  let lambdas = ref [] in
  List.iter
    (fun op ->
      match Api.apply_delta session op with
      | Ok (_, a) -> lambdas := a.Api.lambda :: !lambdas
      | Error e -> failwith ("delta: generated stream rejected: " ^ e))
    ops;
  let inc_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let lambdas = Array.of_list (List.rev !lambdas) in
  let st = Api.session_stats session in
  (* untimed replay: λ-exactness and side validity at EVERY version,
     naive baseline timed on every [sample_every]-th version *)
  let check = Api.open_session ~params:Params.fast base in
  let mismatches = ref 0 and bad_sides = ref 0 in
  let naive_ms = ref 0.0 and naive_solves = ref 0 in
  List.iteri
    (fun i op ->
      match Api.apply_delta check op with
      | Error e -> failwith ("delta: replay diverged: " ^ e)
      | Ok (_, a) ->
          let live = Api.session_graph check in
          let truth = Stoer_wagner.min_cut_value live in
          if a.Api.lambda <> truth || a.Api.lambda <> lambdas.(i) then
            incr mismatches;
          if Graph.cut_of_bitset live (Api.session_side check) <> truth then
            incr bad_sides;
          if i mod sample_every = 0 then begin
            let n0 = Unix.gettimeofday () in
            let s = Api.min_cut ~params:Params.fast live in
            naive_ms := !naive_ms +. ((Unix.gettimeofday () -. n0) *. 1000.0);
            incr naive_solves;
            if s.Api.value <> truth then incr mismatches
          end)
    ops;
  let naive_ms_per = !naive_ms /. float_of_int !naive_solves in
  let naive_total_est = naive_ms_per *. float_of_int nops in
  let inc_per_sec = float_of_int nops /. (inc_ms /. 1000.0) in
  let naive_per_sec = 1000.0 /. naive_ms_per in
  let speedup = naive_total_est /. inc_ms in
  let fallback = Incremental.fallback_rate st in
  let json =
    Json.Obj
      [
        ("bench", Json.String "delta-stream");
        ("quick", Json.Bool quick);
        ("ops", Json.Int nops);
        ("base_n", Json.Int (Graph.n base));
        ("base_m", Json.Int (Graph.m base));
        ("final_version", Json.Int (Handle.version (Api.session_handle session)));
        ("incremental_ms_total", Json.Float inc_ms);
        ("incremental_answers_per_sec", Json.Float inc_per_sec);
        ("naive_solves_sampled", Json.Int !naive_solves);
        ("naive_ms_per_solve", Json.Float naive_ms_per);
        ("naive_answers_per_sec", Json.Float naive_per_sec);
        ("naive_ms_total_estimated", Json.Float naive_total_est);
        ("speedup_incremental_over_naive", Json.Float speedup);
        ("reused", Json.Int st.Incremental.reused);
        ("cert_solves", Json.Int st.Incremental.cert_solves);
        ("full_resolves", Json.Int st.Incremental.full_resolves);
        ("fallback_rate", Json.Float fallback);
        ("lambda_checked", Json.Int nops);
        ("lambda_mismatches", Json.Int !mismatches);
        ("side_violations", Json.Int !bad_sides);
      ]
  in
  let path = "BENCH_delta.json" in
  emit json;
  Printf.printf
    "delta stream: %d ops in %.1f ms (%.0f answers/s), naive %.3f ms/solve \
     (%.0f answers/s), speedup %.1fx, tiers reused=%d cert=%d full=%d \
     (fallback %.3f)\n"
    nops inc_ms inc_per_sec naive_ms_per naive_per_sec speedup
    st.Incremental.reused st.Incremental.cert_solves
    st.Incremental.full_resolves fallback;
  Printf.printf "wrote %s\n" path;
  if !mismatches > 0 then
    failwith
      (Printf.sprintf "delta: %d incremental λ answers diverged from \
                       from-scratch solves" !mismatches);
  if !bad_sides > 0 then
    failwith
      (Printf.sprintf "delta: %d maintained sides fail to achieve λ" !bad_sides);
  if speedup < speedup_floor then
    failwith
      (Printf.sprintf
         "delta: incremental speedup %.2fx below the %.0fx floor" speedup
         speedup_floor);
  Printf.printf "delta gate: PASS (%.1fx >= %.0fx, %d/%d λ exact)\n%!" speedup
    speedup_floor (nops - !mismatches) nops
