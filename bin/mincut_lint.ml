(* mincut_lint — static analysis and conformance audit driver.

     mincut_lint                    # token lint lib/ bin/ + replay conformance
     mincut_lint --json             # machine-readable report
     mincut_lint --no-replay src/   # lint only, custom roots
     mincut_lint ast                # AST tier: call-graph analyzers
     mincut_lint ast --inject race  # prove an AST analyzer is live
     mincut_lint certify --quick    # CONGEST-model certifier (CI form)
     mincut_lint certify --inject order   # prove the certifier is live

   Pass 1 (source lint) scans OCaml sources token-wise for
   determinism/model hazards (see [Mincut_analysis.Lint]); accepted
   findings live in the [.mincut-lint-allow] file.  Pass 2
   (deterministic replay) runs the BFS message program, the exact,
   approx and 1-respecting pipelines and a warm-vs-cold serve pass
   twice each on small workloads and diffs the full execution audits —
   any hidden nondeterminism fails the run.  The [ast] subcommand is
   the second lint tier ([Mincut_analysis.Astlint]): it parses every
   [.ml] with the compiler's parser and runs the call-graph analyzers
   (scope-aware rule ports, effect classes, allocation budgets, static
   domain races) against [.mincut-ast-allow]; [--inject
   nondet|alloc|race] seeds a defect that must be caught (exit 1
   caught, 3 rotted).  The [certify] subcommand drives the
   three-analyzer certification suite ([Mincut_analysis.Certify]):
   shadow sanitizers, span-tree invariant verification and asymptotic
   envelope fits.  Exit status: 0 clean, 1 findings or
   replay/certification failure, 2 usage error. *)

open Cmdliner
module Lint = Mincut_analysis.Lint
module Astlint = Mincut_analysis.Astlint
module Allocheck = Mincut_analysis.Allocheck
module Exnflow = Mincut_analysis.Exnflow
module Resguard = Mincut_analysis.Resguard
module Replay = Mincut_analysis.Replay
module Certify = Mincut_analysis.Certify
module Lockcheck = Mincut_analysis.Lockcheck
module Json = Mincut_util.Json
module Rng = Mincut_util.Rng
module Bitset = Mincut_util.Bitset
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Tree = Mincut_graph.Tree
module Mst_seq = Mincut_graph.Mst_seq
module Primitives = Mincut_congest.Primitives
module Api = Mincut_core.Api
module One_respect = Mincut_core.One_respect
module Params = Mincut_core.Params
module Service = Mincut_serve.Service
module Request = Mincut_serve.Request

let default_allow_file = ".mincut-lint-allow"
let default_ast_allow_file = ".mincut-ast-allow"

(* ---- replay pass ------------------------------------------------------ *)

let diff_int name a b =
  if a = b then [] else [ Printf.sprintf "%s: %d vs %d" name a b ]

let diff_breakdown a b =
  Replay.diff_named ~name:"breakdown"
    ~equal:(List.equal (fun (la, ra) (lb, rb) -> String.equal la lb && ra = rb))
    a b

let diff_summary (a : Api.summary) (b : Api.summary) =
  List.concat
    [
      diff_int "value" a.Api.value b.Api.value;
      diff_int "rounds" a.Api.rounds b.Api.rounds;
      Replay.diff_named ~name:"side" ~equal:Bitset.equal a.Api.side b.Api.side;
      diff_breakdown a.Api.breakdown b.Api.breakdown;
      Replay.diff_named ~name:"span tree (provenance included)"
        ~equal:Mincut_congest.Cost.equal a.Api.cost b.Api.cost;
    ]

let diff_one_respect (a : One_respect.result) (b : One_respect.result) =
  List.concat
    [
      diff_int "best_value" a.One_respect.best_value b.One_respect.best_value;
      diff_int "best_node" a.One_respect.best_node b.One_respect.best_node;
      Replay.diff_named ~name:"cuts" ~equal:(Array.for_all2 Int.equal)
        a.One_respect.cuts b.One_respect.cuts;
      diff_int "cost.rounds" a.One_respect.cost.Mincut_congest.Cost.rounds
        b.One_respect.cost.Mincut_congest.Cost.rounds;
      diff_breakdown
        (Mincut_congest.Cost.breakdown a.One_respect.cost)
        (Mincut_congest.Cost.breakdown b.One_respect.cost);
      Replay.diff_named ~name:"span tree (provenance included)"
        ~equal:Mincut_congest.Cost.equal a.One_respect.cost b.One_respect.cost;
    ]

(* The paper structures Theorem 2.1 as five numbered steps; the span
   tree must expose exactly that shape, with every phase carrying a
   provenance tag.  Checked per workload, independent of replay. *)
let check_phase_structure (r : One_respect.result) =
  let module Cost = Mincut_congest.Cost in
  let spans = r.One_respect.cost.Cost.spans in
  let expected =
    [ "Step 1: "; "Step 2: "; "Step 3: "; "Step 4: "; "Step 5: " ]
  in
  let prefix p s =
    String.length s >= String.length p && String.equal (String.sub s 0 (String.length p)) p
  in
  let shape_errors =
    if List.length spans <> 5 then
      [ Printf.sprintf "expected 5 top-level phase spans, got %d" (List.length spans) ]
    else
      List.concat
        (List.map2
           (fun want (s : Cost.span) ->
             let errs = ref [] in
             if not (prefix want s.Cost.label) then
               errs :=
                 Printf.sprintf "phase %S does not start with %S" s.Cost.label want
                 :: !errs;
             if s.Cost.children = [] then
               errs := Printf.sprintf "phase %S has no children" s.Cost.label :: !errs;
             !errs)
           expected spans)
  in
  let round_errors =
    let total = List.fold_left (fun acc (s : Cost.span) -> acc + s.Cost.rounds) 0 spans in
    if total = r.One_respect.cost.Cost.rounds then []
    else
      [ Printf.sprintf "phase rounds sum %d <> total %d" total
          r.One_respect.cost.Cost.rounds ]
  in
  shape_errors @ round_errors

let workloads () =
  [
    ("torus4", Generators.torus 4 4);
    ("grid5", Generators.grid 5 5);
    ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
  ]

type replay_report = { check : string; ok : bool; diffs : string list }

let replay_checks () =
  List.concat_map
    (fun (wname, g) ->
      [
        ( Printf.sprintf "bfs-audit/%s" wname,
          fun () ->
            Replay.check
              ~run:(fun () ->
                let _, _, audit = Primitives.bfs_tree_audited g ~root:0 in
                audit)
              ~diff:Replay.diff_audits
            |> Result.map (fun _ -> ()) );
        ( Printf.sprintf "exact/%s" wname,
          fun () ->
            Replay.check
              ~run:(fun () ->
                Api.min_cut ~params:Params.fast
                  ~algorithm:Api.Exact_small_lambda ~seed:0 g)
              ~diff:diff_summary
            |> Result.map (fun _ -> ()) );
        ( Printf.sprintf "one-respect/%s" wname,
          fun () ->
            let tree = Tree.of_edge_ids g ~root:0 (Mst_seq.kruskal g) in
            Replay.check
              ~run:(fun () -> Api.one_respecting_cut ~params:Params.fast g tree)
              ~diff:diff_one_respect
            |> Result.map (fun _ -> ()) );
        ( Printf.sprintf "approx/%s" wname,
          fun () ->
            Replay.check
              ~run:(fun () ->
                Api.min_cut ~params:Params.fast ~algorithm:(Api.Approx 0.5)
                  ~seed:0 g)
              ~diff:diff_summary
            |> Result.map (fun _ -> ()) );
        ( Printf.sprintf "serve-warm-cold/%s" wname,
          fun () ->
            (* one request through a fresh service, twice: the second
               answer must come from the result cache and be certified
               span-tree-bit-identical to the cold solve *)
            let service = Service.create () in
            let req = Request.make ~seed:0 g in
            let cold = Service.solve service req in
            let warm = Service.solve service req in
            if not warm.Request.cached then
              Error [ "second solve was not served from the cache" ]
            else if cold.Request.cached then
              Error [ "first solve claimed to be cached" ]
            else begin
              match
                diff_summary cold.Request.summary warm.Request.summary
              with
              | [] -> Ok ()
              | diffs -> Error diffs
            end );
        ( Printf.sprintf "phase-structure/%s" wname,
          fun () ->
            let tree = Tree.of_edge_ids g ~root:0 (Mst_seq.kruskal g) in
            let r = Api.one_respecting_cut ~params:Params.fast g tree in
            match check_phase_structure r with
            | [] -> Ok ()
            | errs -> Error errs );
      ])
    (workloads ())

let run_replay () =
  List.map
    (fun (check, run) ->
      match run () with
      | Ok () -> { check; ok = true; diffs = [] }
      | Error diffs -> { check; ok = false; diffs }
      | exception e ->
          { check; ok = false; diffs = [ "raised " ^ Printexc.to_string e ] })
    (replay_checks ())

(* ---- reporting -------------------------------------------------------- *)

let lockcheck_json () =
  let kind_name = function
    | Lockcheck.Reentrancy -> "reentrancy"
    | Lockcheck.Order_inversion -> "order-inversion"
  in
  Json.List
    (List.map
       (fun (v : Lockcheck.violation) ->
         Json.Obj
           [
             ("kind", Json.String (kind_name v.Lockcheck.kind));
             ("domain", Json.Int v.Lockcheck.domain);
             ("acquiring", Json.String v.Lockcheck.acquiring);
             ("acquiring_order", Json.Int v.Lockcheck.acquiring_order);
             ( "held",
               Json.List
                 (List.map
                    (fun (name, rank) ->
                      Json.Obj
                        [
                          ("lock", Json.String name); ("rank", Json.Int rank);
                        ])
                    v.Lockcheck.held) );
           ])
       (Lockcheck.violations ()))

let report_json findings unused replays =
  Json.Obj
    [
      ("lint", Lint.to_json findings);
      ("allow_unused", Json.List (List.map (fun s -> Json.String s) unused));
      ("lockcheck", lockcheck_json ());
      ( "replay",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("check", Json.String r.check);
                   ("ok", Json.Bool r.ok);
                   ("diffs", Json.List (List.map (fun d -> Json.String d) r.diffs));
                 ])
             replays) );
      ( "status",
        Json.String
          (if findings = [] && List.for_all (fun r -> r.ok) replays then "clean"
           else "dirty") );
    ]

let report_human findings unused replays =
  Format.printf "%a" Lint.pp_findings findings;
  List.iter
    (fun entry ->
      Format.printf "note: unused allowlist entry %S — delete it@." entry)
    unused;
  List.iter
    (fun r ->
      if r.ok then Format.printf "replay ok: %s@." r.check
      else begin
        Format.printf "replay FAILED: %s@." r.check;
        List.iter (fun d -> Format.printf "  %s@." d) r.diffs
      end)
    replays;
  let nf = List.length findings in
  let bad = List.length (List.filter (fun r -> not r.ok) replays) in
  if nf = 0 && bad = 0 then
    Format.printf "mincut_lint: clean (%d replay checks)@." (List.length replays)
  else
    Format.printf "mincut_lint: %d finding%s, %d replay failure%s@." nf
      (if nf = 1 then "" else "s")
      bad
      (if bad = 1 then "" else "s")

(* ---- command ---------------------------------------------------------- *)

let run paths allow_file json no_replay =
  let paths = if paths = [] then [ "lib"; "bin" ] else paths in
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
      Printf.eprintf "mincut_lint: no such path %S\n" missing;
      2
  | None -> (
      let allow =
        match allow_file with
        | Some f -> Lint.Allow.load f
        | None ->
            if Sys.file_exists default_allow_file then
              Lint.Allow.load default_allow_file
            else Ok Lint.Allow.empty
      in
      match allow with
      | Error e ->
          Printf.eprintf "mincut_lint: allowlist: %s\n" e;
          2
      | Ok allow ->
          let raw = Lint.scan_paths paths in
          let findings = Lint.Allow.filter allow raw in
          let unused = Lint.Allow.unused allow raw in
          let replays = if no_replay then [] else run_replay () in
          if json then
            print_endline (Json.to_string (report_json findings unused replays))
          else report_human findings unused replays;
          if findings = [] && List.for_all (fun r -> r.ok) replays then 0 else 1)

(* ---- ast subcommand ---------------------------------------------------- *)

let report_ast_human (r : Astlint.report) findings unused =
  Format.printf "%a" Lint.pp_findings findings;
  List.iter
    (fun entry ->
      Format.printf "note: unused allowlist entry %S — delete it@." entry)
    unused;
  Format.printf "ast: %d files parsed, %d parse error%s@." (List.length r.Astlint.files)
    (List.length r.Astlint.parse_errors)
    (if List.length r.Astlint.parse_errors = 1 then "" else "s");
  Format.printf "ast: effects:%s@."
    (String.concat ""
       (List.filter_map
          (fun (k, n) ->
            if n = 0 then None else Some (Printf.sprintf " %d %s" n k))
          r.Astlint.effect_classes));
  List.iter
    (fun (t : Allocheck.target) ->
      Format.printf "ast: alloc: %s — %d site%s of budget %d@." t.Allocheck.tid
        (List.length t.Allocheck.sites)
        (if List.length t.Allocheck.sites = 1 then "" else "s")
        t.Allocheck.budget)
    r.Astlint.alloc_targets;
  Format.printf "ast: exnflow: %d defs raise;%s@."
    r.Astlint.exn_summary.Exnflow.defs_raising
    (String.concat ""
       (List.map
          (fun (p, n) -> Printf.sprintf " %s(%d)" p n)
          r.Astlint.exn_summary.Exnflow.policies));
  Format.printf "ast: resguard: %d/%d acquisitions bracketed@."
    r.Astlint.resource_summary.Resguard.bracketed
    r.Astlint.resource_summary.Resguard.acquisitions_checked;
  let nf = List.length findings in
  if nf = 0 then Format.printf "mincut_lint ast: clean@."
  else Format.printf "mincut_lint ast: %d finding%s@." nf (if nf = 1 then "" else "s")

let run_ast paths allow_file json inject =
  let paths = if paths = [] then [ "lib"; "bin" ] else paths in
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
      Printf.eprintf "mincut_lint ast: no such path %S\n" missing;
      2
  | None -> (
      let allow =
        match allow_file with
        | Some f -> Lint.Allow.load ~known:Astlint.known_rule f
        | None ->
            if Sys.file_exists default_ast_allow_file then
              Lint.Allow.load ~known:Astlint.known_rule default_ast_allow_file
            else Ok Lint.Allow.empty
      in
      match allow with
      | Error e ->
          Printf.eprintf "mincut_lint ast: allowlist: %s\n" e;
          2
      | Ok allow -> (
          (* wall-time of the analyzers themselves (parse + call graph +
             every pass), printed so lint-job runtime creep is visible *)
          let t0 = Unix.gettimeofday () in
          let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000.0 in
          let finish r =
            let elapsed_ms = elapsed_ms () in
            let raw = Astlint.findings r in
            let findings = Lint.Allow.filter allow raw in
            let unused = Lint.Allow.unused allow raw in
            if json then
              print_endline
                (Json.to_string
                   (match Astlint.to_json r with
                   | Json.Obj fields ->
                       Json.Obj
                         (fields
                         @ [
                             ("elapsed_ms", Json.Float elapsed_ms);
                             ( "allow_unused",
                               Json.List
                                 (List.map (fun s -> Json.String s) unused) );
                             ( "status",
                               Json.String
                                 (if findings = [] then "clean" else "dirty") );
                           ])
                   | other -> other))
            else begin
              report_ast_human r findings unused;
              Format.printf "ast: analyzers ran in %.0f ms@." elapsed_ms
            end;
            findings
          in
          match inject with
          | None -> if finish (Astlint.run paths) = [] then 0 else 1
          | Some seed -> (
              match Astlint.run_inject ~seed paths with
              | Error e ->
                  Printf.eprintf "mincut_lint ast: %s\n" e;
                  2
              | Ok (r, rule) ->
                  let findings = finish r in
                  let caught =
                    List.exists (fun (f : Lint.finding) -> f.Lint.rule = rule) findings
                  in
                  if caught then begin
                    Format.printf
                      "mincut_lint ast: injected %s defect caught (%s)@." seed
                      rule;
                    1
                  end
                  else begin
                    Format.printf
                      "mincut_lint ast: injected %s defect NOT caught — the %s \
                       analyzer has rotted@."
                      seed rule;
                    3
                  end)))

let ast_cmd =
  let paths_arg =
    let doc = "Files or directories to analyze (default: lib bin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let allow_arg =
    let doc =
      "Allowlist file of accepted findings, one 'rule path[:line]' per line \
       (default: " ^ default_ast_allow_file ^ " when present)."
    in
    Arg.(value & opt (some string) None & info [ "allow" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Emit one machine-readable JSON report on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let inject_arg =
    let doc =
      "Append one deliberately defective pseudo-module (nondet, alloc, race, \
       exnleak or fdleak) before analysis; exits 1 if the matching analyzer \
       catches it, 3 if it does not — proving the analyzers are live."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SEED" ~doc)
  in
  let doc =
    "AST analysis tier: parses every .ml with the compiler's parser and runs \
     the call-graph analyzers (effect classes, allocation budgets, static \
     domain races, exception boundaries, resource brackets) plus scope-aware \
     ports of the token rules"
  in
  Cmd.v
    (Cmd.info "ast" ~doc)
    Term.(const run_ast $ paths_arg $ allow_arg $ json_arg $ inject_arg)

(* ---- certify subcommand ----------------------------------------------- *)

(* Serve-level certification check, joined to the Certify report via its
   [?extra] hook (it drives Mincut_serve, which sits above the analysis
   library, so it cannot live in Certify itself): replay one seeded
   delta script through a Service session twice — once applying deltas
   only, once also compacting the handle every few ops — and demand
   every per-delta λ, every solved summary and every cache key come out
   bit-identical.  [Handle.compact] is specified observationally
   invisible (digest, version, generation, anchors all survive), so any
   drift here is a real defect in the delta layer. *)
let certify_incremental_checks () =
  let workloads =
    [
      ("torus4", Generators.torus 4 4);
      ("grid5", Generators.grid 5 5);
      ("gnp24", Generators.gnp_connected ~rng:(Rng.create 12) 24 0.3);
    ]
  in
  let one (gname, g) =
    let ops =
      Generators.delta_stream ~rng:(Rng.create 77) ~wmax:3 ~base:g 40
    in
    let nops = List.length ops in
    let solve_points = [ nops / 3; (2 * nops) / 3; nops - 1 ] in
    let errors = ref [] in
    (* one replay: per-delta (version, λ) trace + responses at the
       solve points; [compact_every = 0] never compacts *)
    let replay ~compact_every =
      let svc =
        Service.create
          ~config:{ Service.default_config with Service.workers = 1 }
          ()
      in
      ignore (Service.session_open svc "s" g);
      let trace = ref [] and solved = ref [] in
      List.iteri
        (fun i op ->
          (match Service.session_delta svc "s" op with
          | Ok (_, outcome, answer) ->
              trace :=
                (outcome.Mincut_graph.Handle.version, answer.Api.lambda)
                :: !trace
          | Error e ->
              errors := Printf.sprintf "%s: delta rejected: %s" gname e :: !errors);
          if compact_every > 0 && i mod compact_every = compact_every - 1 then
            ignore (Service.session_compact svc "s");
          if List.mem i solve_points then
            match
              Service.session_solve svc "s" ~algorithm:Api.Exact_small_lambda
                ~seed:0 ~trees:None
            with
            | Ok resp -> solved := resp :: !solved
            | Error e ->
                errors := Printf.sprintf "%s: solve failed: %s" gname e :: !errors)
        ops;
      (List.rev !trace, List.rev !solved)
    in
    let trace_a, solved_a = replay ~compact_every:0 in
    let trace_b, solved_b = replay ~compact_every:7 in
    let diffs =
      if List.length solved_a <> List.length solved_b then
        [ Printf.sprintf "%s: solve counts differ" gname ]
      else
        List.concat
          [
            Replay.diff_named ~name:(gname ^ ": per-delta (version, λ) trace")
              ~equal:(List.equal (fun (v1, l1) (v2, l2) -> v1 = v2 && l1 = l2))
              trace_a trace_b;
            List.concat
              (List.map2
                 (fun (a : Request.response) (b : Request.response) ->
                   List.map
                     (fun d -> gname ^ ": " ^ d)
                     (List.concat
                        [
                          diff_summary a.Request.summary b.Request.summary;
                          Replay.diff_named ~name:"cache key"
                            ~equal:String.equal a.Request.key b.Request.key;
                          Replay.diff_named ~name:"cached flag"
                            ~equal:Bool.equal a.Request.cached b.Request.cached;
                        ]))
                 solved_a solved_b);
          ]
    in
    !errors @ diffs
  in
  let details = List.concat_map one workloads in
  [
    {
      Certify.name = "serve: delta-then-solve = compact-then-solve (bit-identical)";
      ok = details = [];
      details;
    };
  ]

let report_certify_human (r : Certify.report) =
  List.iter
    (fun (c : Certify.check) ->
      if c.Certify.ok then Format.printf "certify ok: %s@." c.Certify.name
      else begin
        Format.printf "certify FAILED: %s@." c.Certify.name;
        List.iter (fun d -> Format.printf "  %s@." d) c.Certify.details
      end)
    r.Certify.checks;
  let bad =
    List.length (List.filter (fun (c : Certify.check) -> not c.Certify.ok) r.Certify.checks)
  in
  if bad = 0 then
    Format.printf "mincut_lint certify: certified (%d checks)@."
      (List.length r.Certify.checks)
  else
    Format.printf "mincut_lint certify: %d check%s failed@." bad
      (if bad = 1 then "" else "s")

let run_certify quick json slack inject =
  let inject =
    match inject with
    | None -> Ok None
    | Some name -> (
        match Certify.defect_of_name name with
        | Some d -> Ok (Some d)
        | None -> Error name)
  in
  match inject with
  | Error name ->
      Printf.eprintf
        "mincut_lint certify: unknown defect %S (expected order, span or \
         payload)\n"
        name;
      2
  | Ok inject ->
      let r = Certify.run ~quick ?slack ?inject ~extra:certify_incremental_checks () in
      if json then print_endline (Json.to_string (Certify.to_json r))
      else report_certify_human r;
      if r.Certify.ok then 0 else 1

let certify_cmd =
  let quick_arg =
    let doc = "Shrink the scaling ladder (drop n = 128) — the CI form." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let json_arg =
    let doc = "Emit one machine-readable JSON report on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let slack_arg =
    let doc =
      "Multiplicative slack for the asymptotic envelope fits (default "
      ^ string_of_float Mincut_analysis.Scaling.default_slack
      ^ ")."
    in
    Arg.(value & opt (some float) None & info [ "slack" ] ~docv:"FACTOR" ~doc)
  in
  let inject_arg =
    let doc =
      "Seed one deliberate defect (order, span or payload) and run only the \
       analyzer that must catch it; the run then exits non-zero, proving \
       the certifier is live."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"DEFECT" ~doc)
  in
  let doc =
    "CONGEST-model certifier: shadow sanitizers, span-tree invariant \
     verification, asymptotic envelope fits"
  in
  Cmd.v
    (Cmd.info "certify" ~doc)
    Term.(const run_certify $ quick_arg $ json_arg $ slack_arg $ inject_arg)

let cmd =
  let paths_arg =
    let doc = "Files or directories to scan (default: lib bin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let allow_arg =
    let doc =
      "Allowlist file of accepted findings, one 'rule path[:line]' per line \
       (default: " ^ default_allow_file ^ " when present)."
    in
    Arg.(value & opt (some string) None & info [ "allow" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Emit one machine-readable JSON report on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let no_replay_arg =
    let doc = "Skip the deterministic-replay conformance pass." in
    Arg.(value & flag & info [ "no-replay" ] ~doc)
  in
  let doc =
    "static analysis for the mincut repo: determinism lint + CONGEST \
     conformance replay"
  in
  Cmd.group
    ~default:Term.(const run $ paths_arg $ allow_arg $ json_arg $ no_replay_arg)
    (Cmd.info "mincut_lint" ~version:"1.0.0" ~doc)
    [ ast_cmd; certify_cmd ]

let () = exit (Cmd.eval' cmd)
