(* Command-line interface.

     mincut generate --family torus --size 8 -o net.graph
     mincut info net.graph
     mincut solve net.graph --algorithm approx --epsilon 0.3
     mincut solve --family gnp --size 256 --algorithm exact --show-side

   Graphs are stored in the light DIMACS dialect of
   [Mincut_graph.Dimacs]. *)

open Cmdliner
module Graph = Mincut_graph.Graph
module Generators = Mincut_graph.Generators
module Dimacs = Mincut_graph.Dimacs
module Diameter = Mincut_graph.Diameter
module Bfs = Mincut_graph.Bfs
module Stoer_wagner = Mincut_graph.Stoer_wagner
module Bitset = Mincut_util.Bitset
module Rng = Mincut_util.Rng
module Api = Mincut_core.Api
module Params = Mincut_core.Params

(* ---- graph construction -------------------------------------------- *)

let make_graph ~family ~size ~seed ~weight_max =
  let rng = Rng.create seed in
  let weights =
    if weight_max <= 1 then None else Some { Generators.wmin = 1; wmax = weight_max }
  in
  Generators.by_name ~rng ?weights ~name:family ~size ()

let families = Generators.family_names

(* ---- common options -------------------------------------------------- *)

let family_arg =
  let doc =
    "Graph family to generate. One of: " ^ String.concat ", " families ^ "."
  in
  Arg.(value & opt (some string) None & info [ "family" ] ~docv:"FAMILY" ~doc)

let size_arg =
  let doc = "Family size parameter (nodes, side length, or dimension)." in
  Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for generators and randomized algorithms." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let weight_arg =
  let doc = "Draw integer edge weights uniformly from 1..$(docv) (1 = unweighted)." in
  Arg.(value & opt int 1 & info [ "weight-max" ] ~docv:"W" ~doc)

let file_arg =
  let doc = "Graph file (DIMACS dialect); omit to use --family." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let load_graph file family size seed weight_max =
  match (file, family) with
  | Some path, _ -> ( try Ok (Dimacs.load path) with e -> Error (Printexc.to_string e))
  | None, Some fam -> make_graph ~family:fam ~size ~seed ~weight_max
  | None, None -> Error "provide a graph FILE or --family"

(* ---- generate -------------------------------------------------------- *)

let generate_cmd =
  let out_arg =
    let doc = "Output path (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let run family size seed weight_max out =
    match make_graph ~family ~size ~seed ~weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g -> (
        match out with
        | None ->
            print_string (Dimacs.to_string g);
            0
        | Some path ->
            Dimacs.save path g;
            Printf.printf "wrote %s (n=%d, m=%d)\n" path (Graph.n g) (Graph.m g);
            0)
  in
  let family_req =
    Arg.(required & opt (some string) None & info [ "family" ] ~docv:"FAMILY"
           ~doc:("Family: " ^ String.concat ", " families))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark graph")
    Term.(const run $ family_req $ size_arg $ seed_arg $ weight_arg $ out_arg)

(* ---- info ------------------------------------------------------------ *)

let info_cmd =
  let run file family size seed weight_max =
    match load_graph file family size seed weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g ->
        Printf.printf "nodes:      %d\n" (Graph.n g);
        Printf.printf "edges:      %d\n" (Graph.m g);
        Printf.printf "weight:     %d\n" (Graph.total_weight g);
        Printf.printf "connected:  %b\n" (Bfs.is_connected g);
        if Bfs.is_connected g then begin
          Printf.printf "diameter:   %d\n" (Diameter.estimate g);
          let mindeg = Mincut_core.Exact.min_weighted_degree g in
          Printf.printf "min degree: %d (upper bound on the min cut)\n" mindeg;
          if Graph.n g <= 400 then
            Printf.printf "min cut:    %d (Stoer-Wagner ground truth)\n"
              (Stoer_wagner.run g).Stoer_wagner.value
        end;
        0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show basic statistics of a graph")
    Term.(const run $ file_arg $ family_arg $ size_arg $ seed_arg $ weight_arg)

(* ---- solve ------------------------------------------------------------ *)

let solve_cmd =
  let algorithm_arg =
    let doc = "Algorithm: exact, exact2 (2-respecting), approx, gk, or su." in
    Arg.(value & opt string "exact" & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let epsilon_arg =
    let doc = "Approximation parameter for approx/gk/su." in
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"EPS" ~doc)
  in
  let trees_arg =
    let doc = "Tree-packing budget override." in
    Arg.(value & opt (some int) None & info [ "trees" ] ~docv:"T" ~doc)
  in
  let side_arg =
    let doc = "Print the node set of the cut side." in
    Arg.(value & flag & info [ "show-side" ] ~doc)
  in
  let breakdown_arg =
    let doc =
      "Print the round breakdown: $(b,tree) (span tree with provenance), \
       $(b,flat) (leaf steps), or $(b,json) (machine-readable span tree)."
    in
    Arg.(
      value
      & opt ~vopt:(Some "tree") (some string) None
      & info [ "breakdown" ] ~docv:"MODE" ~doc)
  in
  let check_arg =
    let doc = "Also compute ground truth with Stoer-Wagner and compare." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let certify_arg =
    let doc = "Run the distributed O(D)-round certification of the answer." in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let estimate_first_arg =
    let doc =
      "Run the sampling λ-estimate ladder first and cap the tree-packing \
       budget with its upper bound (exact algorithm only; the answer is \
       unchanged, the packing may be smaller)."
    in
    Arg.(value & flag & info [ "estimate-first" ] ~doc)
  in
  let run file family size seed weight_max algo epsilon trees show_side breakdown check certify estimate_first =
    match load_graph file family size seed weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g -> (
        let algorithm =
          match algo with
          | "exact" -> Ok Api.Exact_small_lambda
          | "exact2" -> Ok Api.Exact_two_respect
          | "approx" -> Ok (Api.Approx epsilon)
          | "gk" -> Ok (Api.Ghaffari_kuhn epsilon)
          | "su" -> Ok (Api.Su epsilon)
          | other -> Error (Printf.sprintf "unknown algorithm %S" other)
        in
        match algorithm with
        | Error e ->
            prerr_endline e;
            1
        | Ok algorithm ->
            let lambda_upper =
              if not estimate_first then None
              else begin
                let module E = Mincut_core.Sample_estimate in
                let est = Api.estimate ~seed g in
                Printf.printf
                  "estimate:  λ in [%d, %d] (point %d; %d levels x %d tests, \
                   %d rounds)\n"
                  est.E.lower est.E.upper est.E.estimate est.E.levels_tried
                  est.E.trials_per_level est.E.cost.Mincut_congest.Cost.rounds;
                E.tree_budget_hint est
              end
            in
            let s =
              Api.min_cut ~params:Params.fast ~algorithm ~seed ?lambda_upper
                ?trees g
            in
            Printf.printf "algorithm: %s\n" (Api.algorithm_name algorithm);
            Printf.printf "cut value: %d\n" s.Api.value;
            Printf.printf "rounds:    %d (simulated CONGEST)\n" s.Api.rounds;
            Printf.printf "verified:  %b\n" (Api.verify g s);
            if show_side then
              Printf.printf "side:      {%s}\n"
                (String.concat ", "
                   (List.map string_of_int (Bitset.to_list s.Api.side)));
            let breakdown_bad = ref false in
            (match breakdown with
            | None -> ()
            | Some "tree" -> Format.printf "%a@." Mincut_congest.Cost.pp s.Api.cost
            | Some "flat" ->
                print_endline "round breakdown:";
                List.iter
                  (fun (label, rounds) -> Printf.printf "  %8d  %s\n" rounds label)
                  s.Api.breakdown
            | Some "json" ->
                (* print the span tree as one JSON line, but only after
                   proving it survives a parse + decode round trip — CI
                   leans on this as a serialization smoke test *)
                let module Cost = Mincut_congest.Cost in
                let module Json = Mincut_util.Json in
                let line = Json.to_string (Cost.to_json s.Api.cost) in
                let ok =
                  match Json.of_string line with
                  | Error _ -> false
                  | Ok j -> (
                      match Cost.of_json j with
                      | Error _ -> false
                      | Ok c -> Cost.equal c s.Api.cost)
                in
                if ok then print_endline line
                else begin
                  prerr_endline "breakdown json failed to round-trip";
                  breakdown_bad := true
                end
            | Some other ->
                prerr_endline
                  (Printf.sprintf "unknown breakdown mode %S (tree|flat|json)" other);
                breakdown_bad := true);
            if !breakdown_bad then 1
            else begin
            if check then begin
              let truth = (Stoer_wagner.run g).Stoer_wagner.value in
              Printf.printf "ground truth: %d (%s)\n" truth
                (if truth = s.Api.value then "match"
                 else Printf.sprintf "ratio %.3f"
                        (float_of_int s.Api.value /. float_of_int truth))
            end;
            if certify then begin
              let r = Mincut_core.Certificate.certify_summary g s in
              Printf.printf "certified: %b (recomputed %d, %d extra rounds)\n"
                r.Mincut_core.Certificate.accepted r.Mincut_core.Certificate.recomputed
                r.Mincut_core.Certificate.rounds
            end;
            0
            end)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Compute a minimum cut with the distributed algorithms")
    Term.(
      const run $ file_arg $ family_arg $ size_arg $ seed_arg $ weight_arg
      $ algorithm_arg $ epsilon_arg $ trees_arg $ side_arg $ breakdown_arg $ check_arg
      $ certify_arg $ estimate_first_arg)

(* ---- estimate --------------------------------------------------------- *)

let estimate_cmd =
  let trials_arg =
    let doc = "Connectivity tests per sampling level (default: 4·log₂n-ish)." in
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"T" ~doc)
  in
  let check_arg =
    let doc = "Compare the bracket against Stoer-Wagner ground truth." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let breakdown_arg =
    let doc = "Print the ladder's scheduled span tree." in
    Arg.(value & flag & info [ "breakdown" ] ~doc)
  in
  let run file family size seed weight_max trials check breakdown =
    match load_graph file family size seed weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g ->
        let module E = Mincut_core.Sample_estimate in
        let r = Api.estimate ~seed ?trials g in
        Printf.printf "estimate:  %d\n" r.E.estimate;
        Printf.printf "bracket:   [%d, %d] (factor %d)\n" r.E.lower r.E.upper
          r.E.factor;
        Printf.printf "ladder:    %d levels x %d tests%s\n" r.E.levels_tried
          r.E.trials_per_level
        (if r.E.saturated then " (saturated: no disconnection found)" else "");
        Printf.printf "rounds:    %d (scheduled CONGEST)\n"
          r.E.cost.Mincut_congest.Cost.rounds;
        if breakdown then
          Format.printf "%a@." Mincut_congest.Cost.pp r.E.cost;
        if check && Graph.n g <= 400 then begin
          let truth = (Stoer_wagner.run g).Stoer_wagner.value in
          let inside = r.E.lower <= truth && truth <= r.E.upper in
          Printf.printf "ground truth: %d (%s)\n" truth
            (if inside then "inside bracket" else "OUTSIDE BRACKET");
          if not inside then exit 1
        end;
        0
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Bracket the min cut with the geometric edge-sampling ladder \
          (O(log n)-factor estimate from O(log^2 n) connectivity tests)")
    Term.(
      const run $ file_arg $ family_arg $ size_arg $ seed_arg $ weight_arg
      $ trials_arg $ check_arg $ breakdown_arg)

(* ---- trace ------------------------------------------------------------ *)

let trace_cmd =
  let program_arg =
    let doc = "Program to trace: bfs, broadcast, upcast, or mst." in
    Arg.(value & opt string "bfs" & info [ "program" ] ~docv:"PROG" ~doc)
  in
  let bar width peak v =
    if peak = 0 then ""
    else String.make (max 0 (v * width / peak)) '#'
  in
  let run file family size seed weight_max prog =
    match load_graph file family size seed weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g -> (
        let module P = Mincut_congest.Primitives in
        let module N = Mincut_congest.Network in
        let audit =
          match prog with
          | "bfs" ->
              let _, _, a = P.bfs_tree_audited g ~root:0 in
              Some a
          | "broadcast" ->
              let tree, _, _ = P.bfs_tree_audited g ~root:0 in
              let _, _, a =
                P.broadcast_items_audited g ~tree ~items:(Array.init 16 (fun i -> i))
              in
              Some a
          | "upcast" ->
              let tree, _, _ = P.bfs_tree_audited g ~root:0 in
              let _, _, a =
                P.upcast_distinct_audited g ~tree
                  ~initial:(Array.init (Graph.n g) (fun v -> [ v mod 31 ]))
              in
              Some a
          | "mst" ->
              let r = Mincut_mst.Boruvka_dist.run g in
              Printf.printf "distributed MST: %d phases, %d rounds total
"
                r.Mincut_mst.Boruvka_dist.phases
                r.Mincut_mst.Boruvka_dist.cost.Mincut_congest.Cost.rounds;
              Format.printf "%a@." Mincut_congest.Cost.pp
                r.Mincut_mst.Boruvka_dist.cost;
              None
          | other ->
              prerr_endline (Printf.sprintf "unknown program %S" other);
              None
        in
        match audit with
        | None -> 0
        | Some a ->
            Printf.printf
              "rounds %d, messages %d, words %d, max payload %d words
"
              a.N.rounds a.N.total_messages a.N.total_words a.N.max_words;
            let peak = Array.fold_left max 0 a.N.messages_per_round in
            print_endline "per-round congestion (messages in flight):";
            Array.iteri
              (fun r v -> Printf.printf "  r%-3d %6d %s
" r v (bar 40 peak v))
              a.N.messages_per_round;
            0)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a message-level program and show its congestion profile")
    Term.(
      const run $ file_arg $ family_arg $ size_arg $ seed_arg $ weight_arg $ program_arg)

(* ---- delta ------------------------------------------------------------ *)

let delta_cmd =
  let module Delta = Mincut_graph.Delta in
  let module Handle = Mincut_graph.Handle in
  let module Incremental = Mincut_core.Incremental in
  let stream_arg =
    let doc =
      "Replay the update stream in $(docv) (one op per line: $(b,add u v w), \
       $(b,remove u v), $(b,reweight u v w), $(b,merge u v), \
       $(b,split v w x1,x2,..); $(b,#) comments)."
    in
    Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"FILE" ~doc)
  in
  let ops_arg =
    let doc = "Number of deltas to generate when no --stream is given." in
    Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"K" ~doc)
  in
  let emit_arg =
    let doc =
      "Print the generated stream (replayable with --stream) and exit \
       without solving."
    in
    Arg.(value & flag & info [ "emit" ] ~doc)
  in
  let check_arg =
    let doc =
      "Verify every incremental λ against a from-scratch Stoer-Wagner solve \
       of the live graph (slow; exits 1 on any mismatch)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let trace_arg =
    let doc = "Print one line per applied delta." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run file family size seed weight_max stream ops emit check trace =
    match load_graph file family size seed weight_max with
    | Error e ->
        prerr_endline e;
        1
    | Ok g -> (
        let ops_list =
          match stream with
          | Some path -> Delta.read_stream path
          | None ->
              let rng = Rng.create (seed + 1) in
              let wmax = max 1 weight_max in
              Ok (Generators.delta_stream ~rng ~wmax ~base:g ops)
        in
        match ops_list with
        | Error e ->
            prerr_endline e;
            1
        | Ok ops_list ->
            if emit then begin
              List.iter (fun op -> print_endline (Delta.to_line op)) ops_list;
              0
            end
            else begin
              let session = Api.open_session ~params:Params.fast g in
              Printf.printf "base:      n=%d m=%d lambda=%d\n" (Graph.n g)
                (Graph.m g) (Api.session_lambda session);
              let bad = ref 0 and applied = ref 0 and rejected = ref 0 in
              List.iter
                (fun op ->
                  match Api.apply_delta session op with
                  | Error e ->
                      incr rejected;
                      if trace then
                        Printf.printf "  REJECT %-24s %s\n" (Delta.to_line op) e
                  | Ok (outcome, answer) ->
                      incr applied;
                      if trace then
                        Printf.printf "  v%-5d %-24s lambda=%d mode=%s\n"
                          outcome.Handle.version (Delta.to_line op)
                          answer.Api.lambda
                          (Incremental.mode_name answer.Api.mode);
                      if check then begin
                        let live = Api.session_graph session in
                        let truth =
                          Stoer_wagner.min_cut_value live
                        in
                        if truth <> answer.Api.lambda then begin
                          incr bad;
                          Printf.printf
                            "  MISMATCH at v%d (%s): incremental %d, \
                             from-scratch %d\n"
                            outcome.Handle.version (Delta.to_line op)
                            answer.Api.lambda truth
                        end
                      end)
                ops_list;
              let st = Api.session_stats session in
              let h = Api.session_handle session in
              Printf.printf "applied:   %d deltas (%d rejected)\n" !applied
                !rejected;
              Printf.printf "final:     v%d n=%d channels=%d lambda=%d\n"
                (Handle.version h) (Handle.n h) (Handle.channels h)
                (Api.session_lambda session);
              Printf.printf "digest:    %s\n"
                (Mincut_util.Hash.to_hex (Handle.digest h));
              Printf.printf
                "tiers:     reused=%d cert=%d full=%d (fallback rate %.3f)\n"
                st.Incremental.reused st.Incremental.cert_solves
                st.Incremental.full_resolves
                (Incremental.fallback_rate st);
              if check then
                Printf.printf "check:     %s\n"
                  (if !bad = 0 then "every λ matches from-scratch"
                   else Printf.sprintf "%d MISMATCHES" !bad);
              if !bad > 0 then 1 else 0
            end)
  in
  Cmd.v
    (Cmd.info "delta"
       ~doc:
         "Replay an update stream through the incremental min-cut session \
          (versioned handle + maintained NI certificate)")
    Term.(
      const run $ file_arg $ family_arg $ size_arg $ seed_arg $ weight_arg
      $ stream_arg $ ops_arg $ emit_arg $ check_arg $ trace_arg)

(* ---- serve ------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix-domain socket at $(docv) instead of stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let metrics_arg =
    let doc =
      "Append a JSON-lines metrics snapshot to $(docv) when the server exits \
       (readable with $(b,mincut stats))."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)
  in
  let workers_arg =
    let doc = "Worker pool width (1 = sequential; default: per machine)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W" ~doc)
  in
  let cache_entries_arg =
    let doc = "Result cache bound: resident entries." in
    Arg.(value & opt int 4096 & info [ "cache-entries" ] ~docv:"N" ~doc)
  in
  let cache_cost_arg =
    let doc = "Result cache bound: total footprint in words." in
    Arg.(value & opt int 16_777_216 & info [ "cache-cost" ] ~docv:"WORDS" ~doc)
  in
  let run socket metrics_path workers cache_entries cache_cost =
    let module Service = Mincut_serve.Service in
    let module Server = Mincut_serve.Server in
    let module Metrics = Mincut_serve.Metrics in
    let config =
      {
        Service.default_config with
        Service.cache_entries;
        cache_cost;
        workers =
          (match workers with
          | Some w -> w
          | None -> Service.default_config.Service.workers);
      }
    in
    let service = Service.create ~config () in
    let result =
      try
        (match socket with
        | None -> Server.run_stdio service
        | Some path ->
            Printf.eprintf "serving on %s (SHUTDOWN to stop)\n%!" path;
            Server.run_socket service ~path);
        0
      with e ->
        Printf.eprintf "serve: %s\n" (Printexc.to_string e);
        1
    in
    (match metrics_path with
    | None -> ()
    | Some path ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Metrics.to_json_line (Service.metrics service));
            output_char oc '\n'));
    result
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived solver service (line protocol over stdio or a \
          Unix socket)")
    Term.(
      const run $ socket_arg $ metrics_arg $ workers_arg $ cache_entries_arg
      $ cache_cost_arg)

(* ---- stats ------------------------------------------------------------- *)

let stats_cmd =
  let file_arg =
    let doc = "Metrics JSON-lines file written by $(b,mincut serve --metrics)." in
    Arg.(value & pos 0 string "mincut-metrics.jsonl" & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Echo the raw JSON line instead of the pretty table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run file json =
    let module Metrics = Mincut_serve.Metrics in
    match In_channel.with_open_text file In_channel.input_lines with
    | exception Sys_error e ->
        prerr_endline e;
        1
    | lines -> (
        match List.rev (List.filter (fun l -> String.trim l <> "") lines) with
        | [] ->
            Printf.eprintf "%s: no metrics snapshots\n" file;
            1
        | last :: older ->
            if json then begin
              print_endline last;
              0
            end
            else (
              match Metrics.snapshot_of_json_line last with
              | Error e ->
                  Printf.eprintf "%s: %s\n" file e;
                  1
              | Ok snap ->
                  Format.printf "%a@." Metrics.pp_snapshot snap;
                  if older <> [] then
                    Format.printf "(%d older snapshot%s in %s)@."
                      (List.length older)
                      (if List.length older = 1 then "" else "s")
                      file;
                  0))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Pretty-print the latest metrics snapshot of a serve run")
    Term.(const run $ file_arg $ json_arg)

(* ---- main -------------------------------------------------------------- *)

let () =
  let doc = "distributed minimum cut (Nanongkai, PODC 2014) -- simulator and tools" in
  let info = Cmd.info "mincut" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            info_cmd;
            solve_cmd;
            estimate_cmd;
            delta_cmd;
            trace_cmd;
            serve_cmd;
            stats_cmd;
          ]))
